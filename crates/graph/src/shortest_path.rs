//! Exact (centralized) shortest-path routines: Dijkstra, multi-source
//! Dijkstra, and unweighted BFS.
//!
//! These are the *ground truth* against which the sketches' distance
//! estimates are compared when measuring stretch, and they are also used to
//! compute the shortest-path diameter `S` and the hop diameter `D` in
//! [`crate::diameter`].

use crate::csr::{Graph, NodeId};
use crate::{add_dist, Distance, INFINITY};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Result of a single-source or multi-source shortest-path computation.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    /// `dist[v]` — distance from the (closest) source to `v`, or [`INFINITY`].
    pub dist: Vec<Distance>,
    /// `parent[v]` — predecessor of `v` on a shortest path, or `None` for
    /// sources and unreachable nodes.
    pub parent: Vec<Option<NodeId>>,
    /// `hops[v]` — number of edges on the discovered shortest path to `v`
    /// (ties broken toward fewer hops), or `usize::MAX` if unreachable.
    pub hops: Vec<usize>,
    /// `source[v]` — which source `v` was reached from (meaningful for
    /// multi-source runs), or `None` if unreachable.
    pub source: Vec<Option<NodeId>>,
}

impl ShortestPathTree {
    /// Distance to `v`.
    pub fn distance(&self, v: NodeId) -> Distance {
        self.dist[v.index()]
    }

    /// True if `v` was reached.
    pub fn reached(&self, v: NodeId) -> bool {
        self.dist[v.index()] != INFINITY
    }

    /// Reconstruct the node sequence of a shortest path from the source set
    /// to `v` (inclusive of both endpoints).  Returns `None` if unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.reached(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// Dijkstra from a single source.
pub fn dijkstra(graph: &Graph, source: NodeId) -> ShortestPathTree {
    multi_source_dijkstra(graph, &[source])
}

/// Dijkstra from a set of sources: every source starts at distance 0 and the
/// result records, for every node, the distance to (and identity of) the
/// closest source.  Ties between equal-length paths are broken toward fewer
/// hops, then toward the smaller predecessor id, which makes the output
/// deterministic.
pub fn multi_source_dijkstra(graph: &Graph, sources: &[NodeId]) -> ShortestPathTree {
    let n = graph.num_nodes();
    let mut dist = vec![INFINITY; n];
    let mut parent = vec![None; n];
    let mut hops = vec![usize::MAX; n];
    let mut source = vec![None; n];

    // Binary heap keyed on (distance, hops, node) so that pops are
    // deterministic and hop counts are the minimum among shortest paths.
    let mut heap: BinaryHeap<Reverse<(Distance, usize, u32)>> = BinaryHeap::new();
    for &s in sources {
        if dist[s.index()] == 0 && source[s.index()].is_some() {
            continue; // duplicate source
        }
        dist[s.index()] = 0;
        hops[s.index()] = 0;
        source[s.index()] = Some(s);
        heap.push(Reverse((0, 0, s.0)));
    }

    while let Some(Reverse((d, h, u))) = heap.pop() {
        let ui = u as usize;
        if d > dist[ui] || (d == dist[ui] && h > hops[ui]) {
            continue; // stale entry
        }
        let u_node = NodeId(u);
        let (targets, weights) = graph.neighbor_slices(u_node);
        for (&v, &w) in targets.iter().zip(weights.iter()) {
            let vi = v.index();
            let nd = add_dist(d, w);
            let nh = h + 1;
            let better = nd < dist[vi] || (nd == dist[vi] && nh < hops[vi]);
            if better {
                dist[vi] = nd;
                hops[vi] = nh;
                parent[vi] = Some(u_node);
                source[vi] = source[ui];
                heap.push(Reverse((nd, nh, v.0)));
            }
        }
    }

    ShortestPathTree {
        dist,
        parent,
        hops,
        source,
    }
}

/// Unweighted BFS hop distances from `source`.
pub fn bfs_hops(graph: &Graph, source: NodeId) -> Vec<usize> {
    let n = graph.num_nodes();
    let mut hops = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    hops[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let hu = hops[u.index()];
        for e in graph.neighbors(u) {
            if hops[e.to.index()] == usize::MAX {
                hops[e.to.index()] = hu + 1;
                queue.push_back(e.to);
            }
        }
    }
    hops
}

/// Distance from `u` to the closest node of `set` (the paper's `d(u, A)`),
/// computed exactly.  Returns [`INFINITY`] if `set` is empty or unreachable.
pub fn distance_to_set(graph: &Graph, u: NodeId, set: &[NodeId]) -> Distance {
    if set.is_empty() {
        return INFINITY;
    }
    let tree = multi_source_dijkstra(graph, set);
    tree.distance(u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// Path graph 0 - 1 - 2 - 3 with weights 1, 2, 3.
    fn path_graph() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge_idx(0, 1, 1);
        b.add_edge_idx(1, 2, 2);
        b.add_edge_idx(2, 3, 3);
        b.build()
    }

    /// Weighted graph where the shortest path is not the fewest-hop path.
    ///
    /// 0 --10-- 2,  0 --1-- 1 --1-- 2
    fn detour_graph() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge_idx(0, 2, 10);
        b.add_edge_idx(0, 1, 1);
        b.add_edge_idx(1, 2, 1);
        b.build()
    }

    #[test]
    fn dijkstra_on_path() {
        let g = path_graph();
        let t = dijkstra(&g, NodeId(0));
        assert_eq!(t.dist, vec![0, 1, 3, 6]);
        assert_eq!(t.hops, vec![0, 1, 2, 3]);
        assert_eq!(t.path_to(NodeId(3)).unwrap().len(), 4);
    }

    #[test]
    fn dijkstra_prefers_lighter_detour() {
        let g = detour_graph();
        let t = dijkstra(&g, NodeId(0));
        assert_eq!(t.distance(NodeId(2)), 2);
        assert_eq!(t.hops[2], 2);
        assert_eq!(
            t.path_to(NodeId(2)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn unreachable_nodes_are_infinite() {
        let mut b = GraphBuilder::new(4);
        b.add_edge_idx(0, 1, 1);
        // 2, 3 disconnected (3 fully isolated, 2 isolated too)
        let g = b.build();
        let t = dijkstra(&g, NodeId(0));
        assert_eq!(t.distance(NodeId(2)), INFINITY);
        assert!(!t.reached(NodeId(3)));
        assert_eq!(t.path_to(NodeId(3)), None);
    }

    #[test]
    fn multi_source_picks_closest_source() {
        let g = path_graph();
        let t = multi_source_dijkstra(&g, &[NodeId(0), NodeId(3)]);
        assert_eq!(t.dist, vec![0, 1, 3, 0]);
        assert_eq!(t.source[1], Some(NodeId(0)));
        assert_eq!(t.source[2], Some(NodeId(3)));
    }

    #[test]
    fn multi_source_with_duplicate_sources() {
        let g = path_graph();
        let t = multi_source_dijkstra(&g, &[NodeId(1), NodeId(1)]);
        assert_eq!(t.dist, vec![1, 0, 2, 5]);
    }

    #[test]
    fn bfs_hops_ignores_weights() {
        let g = detour_graph();
        let hops = bfs_hops(&g, NodeId(0));
        assert_eq!(hops, vec![0, 1, 1]);
    }

    #[test]
    fn distance_to_set_basic() {
        let g = path_graph();
        assert_eq!(distance_to_set(&g, NodeId(2), &[NodeId(0), NodeId(3)]), 3);
        assert_eq!(distance_to_set(&g, NodeId(0), &[NodeId(0)]), 0);
        assert_eq!(distance_to_set(&g, NodeId(0), &[]), INFINITY);
    }

    #[test]
    fn dijkstra_zero_weight_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_edge_idx(0, 1, 0);
        b.add_edge_idx(1, 2, 0);
        let g = b.build();
        let t = dijkstra(&g, NodeId(0));
        assert_eq!(t.dist, vec![0, 0, 0]);
        assert_eq!(t.hops, vec![0, 1, 2]);
    }
}
