//! Metric completion of a node subset.
//!
//! Lemma 4.5 of the paper argues that running the restricted Thorup–Zwick
//! construction on `G` with the level hierarchy confined to a subset `N`
//! gives the net nodes "a sketch that is exactly equal to the sketch they
//! would have if we ran Algorithm 2 on the metric completion of `N`".  The
//! metric completion is the complete graph on `N` whose edge weights are the
//! exact shortest-path distances in `G`; this module materializes it so the
//! claim can be checked directly (see the `lemma_4_5_metric_completion`
//! integration test in the `dsketch` crate).

use crate::csr::{Graph, NodeId};
use crate::shortest_path::multi_source_dijkstra;
use crate::{GraphBuilder, INFINITY};

/// The metric completion of `subset` in `graph`, together with the mapping
/// between original node ids and the completion's dense ids.
#[derive(Debug, Clone)]
pub struct MetricCompletion {
    /// The complete weighted graph on the subset (dense ids `0..subset.len()`).
    pub graph: Graph,
    /// `original[i]` is the original id of completion node `i`.
    pub original: Vec<NodeId>,
}

impl MetricCompletion {
    /// Build the metric completion of `subset` (must be non-empty and
    /// pairwise connected in `graph`; unreachable pairs simply get no edge).
    pub fn build(graph: &Graph, subset: &[NodeId]) -> Self {
        let original: Vec<NodeId> = subset.to_vec();
        let m = original.len();
        let mut builder = GraphBuilder::with_capacity(m, m * m / 2);
        for (i, &u) in original.iter().enumerate() {
            let tree = multi_source_dijkstra(graph, &[u]);
            for (j, &v) in original.iter().enumerate().skip(i + 1) {
                let d = tree.distance(v);
                if d != INFINITY {
                    builder.add_edge_idx(i, j, d);
                }
            }
        }
        MetricCompletion {
            graph: builder.build(),
            original,
        }
    }

    /// The completion-local id of an original node, if it is in the subset.
    pub fn local_id(&self, original: NodeId) -> Option<NodeId> {
        self.original
            .iter()
            .position(|&v| v == original)
            .map(NodeId::from_index)
    }

    /// The original id of a completion-local node.
    pub fn original_id(&self, local: NodeId) -> NodeId {
        self.original[local.index()]
    }

    /// Number of subset nodes.
    pub fn len(&self) -> usize {
        self.original.len()
    }

    /// True if the subset was empty.
    pub fn is_empty(&self) -> bool {
        self.original.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apsp::DistanceTable;
    use crate::generators::{erdos_renyi, ring, GeneratorConfig};

    #[test]
    fn completion_edges_are_exact_distances() {
        let g = erdos_renyi(50, 0.12, GeneratorConfig::uniform(3, 1, 20));
        let subset: Vec<NodeId> = (0..10).map(|i| NodeId(i * 5)).collect();
        let completion = MetricCompletion::build(&g, &subset);
        let table = DistanceTable::exact(&g);
        assert_eq!(completion.len(), 10);
        for i in 0..10 {
            for j in (i + 1)..10 {
                let (u, v) = (subset[i], subset[j]);
                let w = completion
                    .graph
                    .edge_weight(NodeId::from_index(i), NodeId::from_index(j))
                    .unwrap();
                assert_eq!(w, table.distance(u, v));
            }
        }
    }

    #[test]
    fn completion_preserves_shortest_path_distances() {
        // Distances inside the completion equal distances in the original
        // graph (the completion is a metric, so direct edges are shortest).
        let g = ring(30, GeneratorConfig::uniform(7, 1, 9));
        let subset: Vec<NodeId> = vec![NodeId(0), NodeId(7), NodeId(15), NodeId(22)];
        let completion = MetricCompletion::build(&g, &subset);
        let inner = DistanceTable::exact(&completion.graph);
        let outer = DistanceTable::exact(&g);
        for i in 0..subset.len() {
            for j in 0..subset.len() {
                assert_eq!(
                    inner.distance(NodeId::from_index(i), NodeId::from_index(j)),
                    outer.distance(subset[i], subset[j])
                );
            }
        }
    }

    #[test]
    fn id_mapping_round_trips() {
        let g = ring(12, GeneratorConfig::unit(1));
        let subset = vec![NodeId(2), NodeId(5), NodeId(9)];
        let completion = MetricCompletion::build(&g, &subset);
        assert!(!completion.is_empty());
        for (i, &orig) in subset.iter().enumerate() {
            assert_eq!(completion.local_id(orig), Some(NodeId::from_index(i)));
            assert_eq!(completion.original_id(NodeId::from_index(i)), orig);
        }
        assert_eq!(completion.local_id(NodeId(0)), None);
    }

    #[test]
    fn disconnected_pairs_get_no_edge() {
        let mut b = GraphBuilder::new(4);
        b.add_edge_idx(0, 1, 3);
        b.add_edge_idx(2, 3, 4);
        let g = b.build();
        let completion = MetricCompletion::build(&g, &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(completion.graph.num_edges(), 1);
        assert!(completion.graph.edge_weight(NodeId(0), NodeId(2)).is_none());
    }
}
