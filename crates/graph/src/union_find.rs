//! Disjoint-set (union–find) structure with union by rank and path halving.
//!
//! Used by the generators to guarantee connectivity (the paper assumes a
//! connected network) and by [`crate::metrics`] to report connected
//! components.

/// Union–find over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// Create `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure tracks zero elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Find the representative of `x`, with path halving.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Union the sets containing `a` and `b`.  Returns `true` if they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_as_singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert_eq!(uf.num_sets(), 2);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(1, 2));
        assert!(uf.union(1, 3));
        assert_eq!(uf.num_sets(), 1);
        assert!(uf.connected(0, 2));
    }

    #[test]
    fn union_of_same_set_is_noop() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.num_sets(), 2);
    }

    #[test]
    fn transitive_connectivity_chain() {
        let mut uf = UnionFind::new(64);
        for i in 0..63 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        assert!(uf.connected(0, 63));
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
    }
}
