//! The `DSK1` container layout: magic, versioned header, section table.
//!
//! A snapshot is one header followed by a flat sequence of sections:
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────────┐
//! │ prelude   magic "DSK1" (4) · version u32 · header_len u32    │
//! ├──────────────────────────────────────────────────────────────┤
//! │ header    scheme spec (tagged, variable)                     │
//! │           graph fingerprint: n u64 · m u64 · checksum u64    │
//! │           section count u32                                  │
//! │           table: { id [4] · offset u64 · len u64 · crc u32 }*│
//! │           header crc32 u32  (over prelude + header body)     │
//! ├──────────────────────────────────────────────────────────────┤
//! │ payload   section payloads, contiguous, in table order       │
//! └──────────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers are little-endian and fixed-width.  Section offsets are
//! relative to the start of the payload area, so the header can be any
//! length without disturbing them.
//!
//! # Versioning policy
//!
//! * The `version` field is the **major** format version.  Readers refuse
//!   versions newer than [`FORMAT_VERSION`]; older versions stay readable
//!   (there is only v1 today).
//! * **Minor** evolution is new section ids: readers skip sections they do
//!   not recognize, so a newer writer can add sections without breaking
//!   older readers of the same major version.
//! * Any change to an existing section's payload encoding (see
//!   `dsketch::codec`) is a major bump.

use crate::crc32::crc32;
use crate::error::StoreError;
use dsketch::cast;
use dsketch::codec::{Decoder, Encoder, SketchCodec};
use dsketch::SchemeSpec;
use netgraph::GraphFingerprint;

/// The four magic bytes every snapshot starts with.
pub const MAGIC: [u8; 4] = *b"DSK1";

/// The current (and highest supported) major format version.
pub const FORMAT_VERSION: u32 = 1;

/// A four-byte section identifier (printable ASCII tag, e.g. `SKCH`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SectionId(pub [u8; 4]);

/// The sketch payload: the family-specific [`SketchCodec`] encoding of the
/// whole sketch set.
pub const SECTION_SKETCHES: SectionId = SectionId(*b"SKCH");

/// The construction cost ([`congest_sim::RunStats`]) of the build that
/// produced the snapshot.  Optional: informational only.
pub const SECTION_BUILD_STATS: SectionId = SectionId(*b"STAT");

impl std::fmt::Display for SectionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for &b in &self.0 {
            if b.is_ascii_graphic() {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        Ok(())
    }
}

/// One row of the section table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionEntry {
    /// The section's identifier.
    pub id: SectionId,
    /// Byte offset of the payload, relative to the start of the payload
    /// area (the first byte after the header).
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC-32 of the payload bytes.
    pub crc: u32,
}

/// The decoded snapshot header.
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    /// Major format version the snapshot was written with.
    pub version: u32,
    /// The scheme the sketches were built with (decides how the `SKCH`
    /// payload is decoded).
    pub spec: SchemeSpec,
    /// Fingerprint of the graph the sketches were built on.
    pub fingerprint: GraphFingerprint,
    /// The section table, in payload order.
    pub sections: Vec<SectionEntry>,
}

impl Header {
    /// Serialize the full header block — prelude, body, trailing CRC — as
    /// written to disk.  `version` is always [`FORMAT_VERSION`] on write.
    ///
    /// Fails (with a typed error, not a wrapped offset) on the absurd:
    /// a section table or header body whose size does not fit the
    /// format's `u32` fields.
    pub fn to_bytes(&self) -> Result<Vec<u8>, StoreError> {
        let oversize = |what: &str, e: cast::CastError| StoreError::MalformedSectionTable {
            message: format!("{what}: {e}"),
        };
        let mut body = Encoder::new();
        self.spec.encode(&mut body);
        body.put_u64(self.fingerprint.nodes);
        body.put_u64(self.fingerprint.edges);
        body.put_u64(self.fingerprint.weight_checksum);
        body.put_u32(cast::to_u32(self.sections.len()).map_err(|e| oversize("section count", e))?);
        for entry in &self.sections {
            for &b in &entry.id.0 {
                body.put_u8(b);
            }
            body.put_u64(entry.offset);
            body.put_u64(entry.len);
            body.put_u32(entry.crc);
        }
        let body = body.into_bytes();

        // header_len covers the body plus the trailing CRC.
        let header_len = cast::to_u32(body.len() + 4).map_err(|e| oversize("header length", e))?;
        let mut out = Vec::with_capacity(12 + body.len() + 4);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&header_len.to_le_bytes());
        out.extend_from_slice(&body);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        Ok(out)
    }

    /// Parse and verify a header from the prelude bytes plus the header
    /// block (as read back by the snapshot reader).
    ///
    /// `prelude` is the 12 fixed bytes (magic, version, header_len);
    /// `block` is the `header_len` bytes that follow.
    pub fn from_parts(prelude: &[u8; 12], block: &[u8]) -> Result<Header, StoreError> {
        // A [u8; 12] prelude always splits into three 4-byte fields; the
        // array constructors below make that a type-level fact instead of
        // a panicking slice conversion.
        let found = [prelude[0], prelude[1], prelude[2], prelude[3]];
        if found != MAGIC {
            return Err(StoreError::BadMagic { found });
        }
        let version = u32::from_le_bytes([prelude[4], prelude[5], prelude[6], prelude[7]]);
        if version > FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        if block.len() < 4 {
            return Err(StoreError::Truncated {
                context: "header checksum",
            });
        }
        let (body, crc_bytes) = block.split_at(block.len() - 4);
        let expected = crc_bytes
            .first_chunk::<4>()
            .copied()
            .map(u32::from_le_bytes)
            .ok_or(StoreError::Truncated {
                context: "header checksum",
            })?;
        let mut checked = Vec::with_capacity(12 + body.len());
        checked.extend_from_slice(prelude);
        checked.extend_from_slice(body);
        let actual = crc32(&checked);
        if actual != expected {
            return Err(StoreError::HeaderChecksumMismatch { expected, actual });
        }

        let mut input = Decoder::new(body);
        let header = (|| -> Result<Header, dsketch::codec::CodecError> {
            let spec = SchemeSpec::decode(&mut input)?;
            let fingerprint = GraphFingerprint {
                nodes: input.u64("fingerprint.nodes")?,
                edges: input.u64("fingerprint.edges")?,
                weight_checksum: input.u64("fingerprint.checksum")?,
            };
            let count = cast::usize_from_u32(input.u32("section count")?);
            let mut sections = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                let mut id = [0u8; 4];
                for slot in &mut id {
                    *slot = input.u8("section id")?;
                }
                sections.push(SectionEntry {
                    id: SectionId(id),
                    offset: input.u64("section offset")?,
                    len: input.u64("section length")?,
                    crc: input.u32("section crc")?,
                });
            }
            Ok(Header {
                version,
                spec,
                fingerprint,
                sections,
            })
        })()
        .map_err(|source| StoreError::Codec {
            section: SectionId(*b"HDR\0"),
            source,
        })?;
        input.finish().map_err(|source| StoreError::Codec {
            section: SectionId(*b"HDR\0"),
            source,
        })?;

        // The table must describe a contiguous, in-order payload area: the
        // reader consumes the stream sequentially.
        let mut cursor = 0u64;
        for entry in &header.sections {
            if entry.offset != cursor {
                return Err(StoreError::MalformedSectionTable {
                    message: format!(
                        "section {} starts at offset {} but the previous section ends at {cursor}",
                        entry.id, entry.offset
                    ),
                });
            }
            cursor =
                cursor
                    .checked_add(entry.len)
                    .ok_or_else(|| StoreError::MalformedSectionTable {
                        message: format!("section {} length overflows", entry.id),
                    })?;
        }
        Ok(header)
    }

    /// Total payload bytes described by the section table.
    pub fn payload_len(&self) -> u64 {
        self.sections.iter().map(|s| s.len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> Header {
        Header {
            version: FORMAT_VERSION,
            spec: SchemeSpec::thorup_zwick(3),
            fingerprint: GraphFingerprint {
                nodes: 10,
                edges: 20,
                weight_checksum: 0xDEAD_BEEF,
            },
            sections: vec![
                SectionEntry {
                    id: SECTION_SKETCHES,
                    offset: 0,
                    len: 100,
                    crc: 7,
                },
                SectionEntry {
                    id: SECTION_BUILD_STATS,
                    offset: 100,
                    len: 48,
                    crc: 8,
                },
            ],
        }
    }

    fn split(bytes: &[u8]) -> ([u8; 12], &[u8]) {
        (bytes[0..12].try_into().unwrap(), &bytes[12..])
    }

    #[test]
    fn header_round_trips() {
        let header = sample_header();
        let bytes = header.to_bytes().unwrap();
        let (prelude, block) = split(&bytes);
        assert_eq!(Header::from_parts(&prelude, block).unwrap(), header);
        assert_eq!(header.payload_len(), 148);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample_header().to_bytes().unwrap();
        bytes[0] = b'X';
        let (prelude, block) = split(&bytes);
        assert!(matches!(
            Header::from_parts(&prelude, block),
            Err(StoreError::BadMagic { .. })
        ));
    }

    #[test]
    fn future_versions_are_rejected() {
        let mut header = sample_header();
        header.version = FORMAT_VERSION + 1;
        let bytes = header.to_bytes().unwrap();
        let (prelude, block) = split(&bytes);
        assert!(matches!(
            Header::from_parts(&prelude, block),
            Err(StoreError::UnsupportedVersion { found, .. }) if found == FORMAT_VERSION + 1
        ));
    }

    #[test]
    fn every_header_bit_flip_is_detected() {
        let bytes = sample_header().to_bytes().unwrap();
        for byte in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 0x40;
            let (prelude, block) = split(&flipped);
            assert!(
                Header::from_parts(&prelude, block).is_err(),
                "flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn non_contiguous_section_tables_are_rejected() {
        let mut header = sample_header();
        header.sections[1].offset = 99;
        let bytes = header.to_bytes().unwrap();
        let (prelude, block) = split(&bytes);
        assert!(matches!(
            Header::from_parts(&prelude, block),
            Err(StoreError::MalformedSectionTable { .. })
        ));
    }

    #[test]
    fn section_ids_display_printably() {
        assert_eq!(SECTION_SKETCHES.to_string(), "SKCH");
        assert_eq!(SectionId([0, b'A', 0xFF, b'B']).to_string(), "\\x00A\\xffB");
    }
}
