//! The artifact lifecycle: **build → save → inspect → load → serve**.
//!
//! [`SnapshotContents`] is a snapshot's logical content — the scheme spec,
//! the graph fingerprint, the family-typed sketches, and (optionally) the
//! construction cost.  The functions here move it between memory and bytes:
//!
//! * [`build_and_save`] — run a scheme's CONGEST construction and persist
//!   the result in one step (the "pay once" half of the paper's bargain).
//! * [`save_snapshot`] / [`write_snapshot`] — persist an already built
//!   sketch set.
//! * [`load_snapshot`] / [`read_snapshot`] — reload and CRC-verify.
//! * [`load_oracle`] / [`load_oracle_for_graph`] — straight from a path to
//!   a queryable `Box<dyn DistanceOracle>`, dispatching on the stored
//!   [`SchemeSpec`]; the `for_graph` variant refuses to serve a snapshot
//!   against a graph whose [`GraphFingerprint`] differs.
//! * [`inspect_snapshot`] — header and section-table summary without
//!   decoding the sketches.

use crate::error::StoreError;
use crate::format::{SectionEntry, SECTION_BUILD_STATS, SECTION_SKETCHES};
use crate::snapshot::{RawSnapshot, SnapshotReader, SnapshotWriter};
use congest_sim::RunStats;
use dsketch::codec::SketchCodec;
use dsketch::prelude::*;
use netgraph::{Graph, GraphFingerprint};
use std::io::{Read, Write};
use std::path::Path;

/// A family-typed, persistable sketch set: the concrete result of any of
/// the four scheme constructions.
#[derive(Debug, Clone)]
pub enum StoredSketches {
    /// Thorup–Zwick labels plus their sampled hierarchy.
    ThorupZwick(TzSketchSet),
    /// 3-stretch slack sketches plus their density net.
    ThreeStretch(ThreeStretchSketchSet),
    /// (ε, k)-CDG sketches.
    Cdg(CdgSketchSet),
    /// Gracefully degrading layered sketches.
    Degrading(DegradingSketchSet),
}

impl StoredSketches {
    /// The scheme identifier of the wrapped family.
    pub fn scheme_name(&self) -> &'static str {
        self.as_oracle().scheme_name()
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.as_oracle().num_nodes()
    }

    /// Borrow as the uniform query interface.
    pub fn as_oracle(&self) -> &dyn DistanceOracle {
        match self {
            StoredSketches::ThorupZwick(s) => s,
            StoredSketches::ThreeStretch(s) => s,
            StoredSketches::Cdg(s) => s,
            StoredSketches::Degrading(s) => s,
        }
    }

    /// Convert into a boxed oracle (the serving layer's currency).
    pub fn into_oracle(self) -> Box<dyn DistanceOracle> {
        match self {
            StoredSketches::ThorupZwick(s) => Box::new(s),
            StoredSketches::ThreeStretch(s) => Box::new(s),
            StoredSketches::Cdg(s) => Box::new(s),
            StoredSketches::Degrading(s) => Box::new(s),
        }
    }

    /// Freeze the wrapped family into the flat CSR query representation
    /// (see [`dsketch::flat`]).
    pub fn freeze(&self) -> FlatSketchSet {
        match self {
            StoredSketches::ThorupZwick(s) => s.freeze(),
            StoredSketches::ThreeStretch(s) => s.freeze(),
            StoredSketches::Cdg(s) => s.freeze(),
            StoredSketches::Degrading(s) => s.freeze(),
        }
    }

    /// Encode the family payload (the `SKCH` section body).
    pub fn encode_payload(&self) -> Vec<u8> {
        match self {
            StoredSketches::ThorupZwick(s) => s.to_bytes(),
            StoredSketches::ThreeStretch(s) => s.to_bytes(),
            StoredSketches::Cdg(s) => s.to_bytes(),
            StoredSketches::Degrading(s) => s.to_bytes(),
        }
    }

    /// Decoded entity counts of the family payload — what the `SKCH`
    /// section's bytes actually contain: `(layers, nodes, bunch_entries)`.
    /// Single-layer families report `layers == 1`; `bunch_entries` is the
    /// total across every sketch of every layer.
    pub fn entity_counts(&self) -> (usize, usize, usize) {
        let count = |set: &SketchSet| (set.len(), set.iter().map(Sketch::bunch_size).sum());
        match self {
            StoredSketches::ThorupZwick(s) => {
                let (nodes, bunches) = count(&s.sketches);
                (1, nodes, bunches)
            }
            StoredSketches::ThreeStretch(s) => {
                let (nodes, bunches) = count(&s.sketches);
                (1, nodes, bunches)
            }
            StoredSketches::Cdg(s) => {
                let (nodes, bunches) = count(&s.sketches);
                (1, nodes, bunches)
            }
            StoredSketches::Degrading(s) => {
                let nodes = s.layers.first().map_or(0, |l| l.sketches.len());
                let bunches = s.layers.iter().map(|l| count(&l.sketches).1).sum();
                (s.layers.len(), nodes, bunches)
            }
        }
    }

    /// Decode the family payload, dispatching on the stored scheme spec.
    pub fn decode_payload(spec: &SchemeSpec, bytes: &[u8]) -> Result<Self, StoreError> {
        let wrap = |source| StoreError::Codec {
            section: SECTION_SKETCHES,
            source,
        };
        Ok(match spec {
            SchemeSpec::ThorupZwick { .. } => {
                StoredSketches::ThorupZwick(TzSketchSet::from_bytes(bytes).map_err(wrap)?)
            }
            SchemeSpec::ThreeStretch { .. } => StoredSketches::ThreeStretch(
                ThreeStretchSketchSet::from_bytes(bytes).map_err(wrap)?,
            ),
            SchemeSpec::Cdg { .. } => {
                StoredSketches::Cdg(CdgSketchSet::from_bytes(bytes).map_err(wrap)?)
            }
            SchemeSpec::Degrading { .. } => {
                StoredSketches::Degrading(DegradingSketchSet::from_bytes(bytes).map_err(wrap)?)
            }
        })
    }
}

/// The logical content of one snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotContents {
    /// The scheme the sketches were built with.
    pub spec: SchemeSpec,
    /// Fingerprint of the graph the sketches were built on.
    pub fingerprint: GraphFingerprint,
    /// The sketches themselves.
    pub sketches: StoredSketches,
    /// Construction cost of the build that produced the snapshot, when
    /// recorded.
    pub build_stats: Option<RunStats>,
}

impl SnapshotContents {
    /// Refuse to use these sketches with a graph they were not built on.
    pub fn verify_graph(&self, graph: &Graph) -> Result<(), StoreError> {
        let actual = graph.fingerprint();
        if actual != self.fingerprint {
            return Err(StoreError::FingerprintMismatch {
                snapshot: self.fingerprint,
                graph: actual,
            });
        }
        Ok(())
    }

    /// Convert into a queryable oracle.
    pub fn into_oracle(self) -> Box<dyn DistanceOracle> {
        self.sketches.into_oracle()
    }
}

/// Serialize `contents` to any writer.  Returns the bytes written.
pub fn write_snapshot<W: Write>(writer: W, contents: &SnapshotContents) -> Result<u64, StoreError> {
    let started = std::time::Instant::now();
    let mut snapshot = SnapshotWriter::new(contents.spec, contents.fingerprint);
    snapshot.add_section(SECTION_SKETCHES, contents.sketches.encode_payload());
    if let Some(stats) = &contents.build_stats {
        snapshot.add_section(SECTION_BUILD_STATS, stats.to_bytes());
    }
    let written = snapshot.write_to(writer)?;
    let registry = dsketch_obs::global();
    registry
        .histogram(
            "dsketch_store_snapshot_save_nanos",
            "Wall time encoding and writing one DSK1 snapshot.",
        )
        .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
    registry
        .counter(
            "dsketch_store_save_bytes_total",
            "Snapshot bytes written (headers, sections, checksums).",
        )
        .add(written);
    Ok(written)
}

/// The sibling path a crash-safe save stages its bytes at before the
/// atomic rename: `g.dsk` → `g.dsk.tmp`.
pub fn snapshot_tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Serialize `contents` to the file at `path`, crash-safely.  Returns the
/// bytes written.
///
/// The bytes are staged at [`snapshot_tmp_path`], fsynced, and renamed
/// over `path` in one atomic step — a crash or injected fault at any
/// point leaves either the previous snapshot or the new one at `path`,
/// never a torn third state, and a failed save removes its own `*.tmp`
/// so retries start clean.  (A crash between write and rename can leave a
/// stale `*.tmp` behind; loaders never read it — only the rename
/// publishes bytes — and the next successful save replaces it.)
///
/// Failpoints (see `dsketch-faults`): `store.save.create`,
/// `store.save.write` (supports `partial:N` torn writes),
/// `store.save.fsync`, `store.save.rename`.
pub fn save_snapshot<P: AsRef<Path>>(
    path: P,
    contents: &SnapshotContents,
) -> Result<u64, StoreError> {
    let path = path.as_ref();
    let tmp = snapshot_tmp_path(path);
    let result = stage_and_rename(path, &tmp, contents);
    if result.is_err() {
        // Contract: a failed save never litters `*.tmp`.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn stage_and_rename(
    path: &Path,
    tmp: &Path,
    contents: &SnapshotContents,
) -> Result<u64, StoreError> {
    if let Some(fault) = dsketch_faults::fail_point!("store.save.create") {
        return Err(StoreError::Io(fault.io_error("store.save.create")));
    }
    let file = std::fs::File::create(tmp)?;
    let written = write_snapshot(
        std::io::BufWriter::new(dsketch_faults::FaultWriter::new(&file, "store.save.write")),
        contents,
    )?;
    if let Some(fault) = dsketch_faults::fail_point!("store.save.fsync") {
        return Err(StoreError::Io(fault.io_error("store.save.fsync")));
    }
    // Durability before visibility: the staged bytes reach the platters
    // before the rename can publish them.
    file.sync_all()?;
    drop(file);
    if let Some(fault) = dsketch_faults::fail_point!("store.save.rename") {
        return Err(StoreError::Io(fault.io_error("store.save.rename")));
    }
    std::fs::rename(tmp, path)?;
    // Best effort: persist the directory entry too, so the rename itself
    // survives power loss.  Not all platforms support fsync on
    // directories; failure here cannot un-publish the snapshot.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = std::fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(written)
}

/// Read, verify and decode a snapshot from any reader.
pub fn read_snapshot<R: Read>(reader: R) -> Result<SnapshotContents, StoreError> {
    let started = std::time::Instant::now();
    let contents = decode_raw(SnapshotReader::new(reader).read()?)?;
    record_snapshot_load(started);
    Ok(contents)
}

/// Charge one completed snapshot load to the global registry.
fn record_snapshot_load(started: std::time::Instant) {
    dsketch_obs::global()
        .histogram(
            "dsketch_store_snapshot_load_nanos",
            "Wall time reading, verifying, and decoding one DSK1 snapshot.",
        )
        .record(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
}

/// Charge successfully loaded snapshot bytes to the global registry.
fn record_snapshot_load_bytes(bytes: u64) {
    dsketch_obs::global()
        .counter(
            "dsketch_store_load_bytes_total",
            "Snapshot bytes read from disk by successful loads.",
        )
        .add(bytes);
}

/// Read, verify and decode the snapshot at `path`.
pub fn load_snapshot<P: AsRef<Path>>(path: P) -> Result<SnapshotContents, StoreError> {
    let file = std::fs::File::open(path)?;
    let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
    let contents = read_snapshot(std::io::BufReader::new(file))?;
    record_snapshot_load_bytes(bytes);
    Ok(contents)
}

/// Read just the header of the snapshot at `path` — its [`SchemeSpec`] and
/// graph [`GraphFingerprint`] — verifying checksums but never decoding the
/// sketch payload.  This is how a serving front end learns *what* it is
/// about to serve without paying the decode twice.
pub fn peek_snapshot_meta<P: AsRef<Path>>(
    path: P,
) -> Result<(SchemeSpec, GraphFingerprint), StoreError> {
    let file = std::fs::File::open(path)?;
    let raw = SnapshotReader::new(std::io::BufReader::new(file)).read()?;
    Ok((raw.spec(), raw.fingerprint()))
}

fn decode_raw(raw: RawSnapshot) -> Result<SnapshotContents, StoreError> {
    let spec = raw.spec();
    let sketches = StoredSketches::decode_payload(&spec, raw.require_section(SECTION_SKETCHES)?)?;
    let build_stats = raw
        .section(SECTION_BUILD_STATS)
        .map(RunStats::from_bytes)
        .transpose()
        .map_err(|source| StoreError::Codec {
            section: SECTION_BUILD_STATS,
            source,
        })?;
    Ok(SnapshotContents {
        spec,
        fingerprint: raw.fingerprint(),
        sketches,
        build_stats,
    })
}

/// Load the snapshot at `path` straight into a queryable oracle.
///
/// The scheme is dispatched from the stored [`SchemeSpec`] — callers do not
/// need to know which family the snapshot holds.  Use
/// [`load_oracle_for_graph`] when the graph is at hand, so an oracle is
/// never served against a topology it was not built for.
pub fn load_oracle<P: AsRef<Path>>(path: P) -> Result<Box<dyn DistanceOracle>, StoreError> {
    Ok(load_snapshot(path)?.into_oracle())
}

/// Load the snapshot at `path` straight into a **frozen** oracle: the
/// `SKCH` section bytes are materialized directly into a
/// [`FlatSketchSet`]'s CSR arrays, without ever constructing the mutable
/// `BTreeMap`-backed sketches — the cold-start path `dsketch-serve` and
/// `dsketch-store serve` default to.  Answers are identical to
/// [`load_oracle`]'s (the equivalence property tests pin this); only the
/// in-memory layout differs.
pub fn load_frozen_oracle<P: AsRef<Path>>(path: P) -> Result<Box<dyn DistanceOracle>, StoreError> {
    let file = std::fs::File::open(path)?;
    let bytes = file.metadata().map(|m| m.len()).unwrap_or(0);
    let oracle = read_frozen_oracle(std::io::BufReader::new(file))?;
    record_snapshot_load_bytes(bytes);
    Ok(oracle)
}

/// [`load_frozen_oracle`] over any reader.
pub fn read_frozen_oracle<R: Read>(reader: R) -> Result<Box<dyn DistanceOracle>, StoreError> {
    let started = std::time::Instant::now();
    let raw = SnapshotReader::new(reader).read()?;
    let spec = raw.spec();
    let flat = FlatSketchSet::from_family_bytes(&spec, raw.require_section(SECTION_SKETCHES)?)
        .map_err(|source| StoreError::Codec {
            section: SECTION_SKETCHES,
            source,
        })?;
    record_snapshot_load(started);
    Ok(Box::new(flat))
}

/// Like [`load_oracle`], but refuse with
/// [`StoreError::FingerprintMismatch`] when `graph` is not the graph the
/// snapshot was built on.
pub fn load_oracle_for_graph<P: AsRef<Path>>(
    path: P,
    graph: &Graph,
) -> Result<Box<dyn DistanceOracle>, StoreError> {
    let contents = load_snapshot(path)?;
    contents.verify_graph(graph)?;
    Ok(contents.into_oracle())
}

/// Run the construction for `spec` on `graph`, keeping the family-typed
/// result (the build half of [`build_and_save`], exposed so callers can
/// time or stage the two halves separately).
///
/// The engine comes from [`SchemeConfig::engine`]: the CONGEST simulation
/// (default — records round/message stats) or the direct parallel engine
/// (`config.with_parallel_build().with_threads(n)` — the fast production
/// path, whose snapshot bytes are bit-identical for every thread count).
pub fn build_stored(
    graph: &Graph,
    spec: SchemeSpec,
    config: &SchemeConfig,
) -> Result<SnapshotContents, StoreError> {
    let fingerprint = graph.fingerprint();
    let (sketches, stats) = match spec {
        SchemeSpec::ThorupZwick { k } => {
            let outcome = ThorupZwickScheme::new(k).build(graph, config)?;
            (StoredSketches::ThorupZwick(outcome.sketches), outcome.stats)
        }
        SchemeSpec::ThreeStretch { eps } => {
            let outcome = ThreeStretchScheme::new(eps).build(graph, config)?;
            (
                StoredSketches::ThreeStretch(outcome.sketches),
                outcome.stats,
            )
        }
        SchemeSpec::Cdg { eps, k } => {
            let outcome = CdgScheme::new(eps, k).build(graph, config)?;
            (StoredSketches::Cdg(outcome.sketches), outcome.stats)
        }
        SchemeSpec::Degrading { max_layers, max_k } => {
            let outcome = DegradingScheme { max_layers, max_k }.build(graph, config)?;
            (StoredSketches::Degrading(outcome.sketches), outcome.stats)
        }
    };
    Ok(SnapshotContents {
        spec,
        fingerprint,
        sketches,
        build_stats: Some(stats),
    })
}

/// Run the construction for `spec` on `graph` (engine and thread count come
/// from `config` — see [`build_stored`]) and persist the result at `path`
/// in one step.  Returns the saved contents and the number of bytes
/// written.
pub fn build_and_save<P: AsRef<Path>>(
    graph: &Graph,
    spec: SchemeSpec,
    config: &SchemeConfig,
    path: P,
) -> Result<(SnapshotContents, u64), StoreError> {
    let contents = build_stored(graph, spec, config)?;
    let bytes = save_snapshot(path, &contents)?;
    Ok((contents, bytes))
}

/// The edge-list → build → save one-shot: load a plain-text edge list
/// (`netgraph::io` format), run the construction for `spec`, persist the
/// snapshot at `out`.  Returns the loaded graph and the saved contents with
/// the byte count.
pub fn build_and_save_from_edge_list<P: AsRef<Path>, Q: AsRef<Path>>(
    edge_list: P,
    spec: SchemeSpec,
    config: &SchemeConfig,
    out: Q,
) -> Result<(Graph, SnapshotContents, u64), StoreError> {
    let graph = netgraph::io::load_edge_list(edge_list)?;
    let (contents, bytes) = build_and_save(&graph, spec, config, out)?;
    Ok((graph, contents, bytes))
}

/// What one section's payload decodes to — the "entities" column of
/// `dsketch-store inspect`.  Byte lengths say how big a section is;
/// this says what is *in* it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SectionEntities {
    /// The `SKCH` family payload: decoded sketch counts.
    Sketches {
        /// Sketch layers (`1` for the single-layer families, the layer
        /// count for the gracefully degrading scheme).
        layers: usize,
        /// Nodes covered (per layer).
        nodes: usize,
        /// Total bunch entries across every sketch of every layer.
        bunch_entries: usize,
    },
    /// The `STAT` section: decoded construction-cost records.
    BuildStats {
        /// Number of decoded [`RunStats`] records.
        records: usize,
    },
    /// A section this inspector does not decode (the forward-compat
    /// carry path for unknown ids).
    Opaque,
}

impl std::fmt::Display for SectionEntities {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SectionEntities::Sketches {
                layers,
                nodes,
                bunch_entries,
            } if *layers == 1 => {
                write!(f, "{nodes} nodes, {bunch_entries} bunch entries")
            }
            SectionEntities::Sketches {
                layers,
                nodes,
                bunch_entries,
            } => write!(
                f,
                "{layers} layers × {nodes} nodes, {bunch_entries} bunch entries"
            ),
            SectionEntities::BuildStats { records } => {
                write!(f, "{records} build-stats record")
            }
            SectionEntities::Opaque => write!(f, "(not decoded)"),
        }
    }
}

/// A decoded header summary: what `dsketch-store inspect` prints.
#[derive(Debug, Clone)]
pub struct SnapshotSummary {
    /// Format version of the snapshot.
    pub version: u32,
    /// The stored scheme spec.
    pub spec: SchemeSpec,
    /// The stored graph fingerprint.
    pub fingerprint: GraphFingerprint,
    /// The section table.
    pub sections: Vec<SectionEntry>,
    /// What each section's payload decodes to, parallel to `sections`.
    pub section_entities: Vec<SectionEntities>,
    /// Total snapshot size in bytes.
    pub total_bytes: u64,
    /// Nodes covered by the sketches.
    pub num_nodes: usize,
    /// Largest per-node label, in CONGEST words.
    pub max_words: usize,
    /// Mean per-node label, in CONGEST words.
    pub avg_words: f64,
    /// Construction cost, when the snapshot recorded it.
    pub build_stats: Option<RunStats>,
}

/// Summarize the snapshot at `path`: header fields, section table, label
/// statistics.  Verifies all checksums along the way (an `inspect` that
/// says "ok" means the snapshot will load).
pub fn inspect_snapshot<P: AsRef<Path>>(path: P) -> Result<SnapshotSummary, StoreError> {
    let file = std::fs::File::open(path)?;
    let raw = SnapshotReader::new(std::io::BufReader::new(file)).read()?;
    let sections = raw.header().sections.clone();
    let version = raw.header().version;
    let total_bytes = raw.total_bytes();
    let contents = decode_raw(raw)?;
    let oracle = contents.sketches.as_oracle();
    let section_entities = sections
        .iter()
        .map(|entry| match entry.id {
            SECTION_SKETCHES => {
                let (layers, nodes, bunch_entries) = contents.sketches.entity_counts();
                SectionEntities::Sketches {
                    layers,
                    nodes,
                    bunch_entries,
                }
            }
            SECTION_BUILD_STATS => SectionEntities::BuildStats {
                records: usize::from(contents.build_stats.is_some()),
            },
            _ => SectionEntities::Opaque,
        })
        .collect();
    Ok(SnapshotSummary {
        version,
        spec: contents.spec,
        fingerprint: contents.fingerprint,
        sections,
        section_entities,
        total_bytes,
        num_nodes: oracle.num_nodes(),
        max_words: oracle.max_words(),
        avg_words: oracle.avg_words(),
        build_stats: contents.build_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators::{erdos_renyi, GeneratorConfig};
    use netgraph::NodeId;

    fn graph() -> Graph {
        erdos_renyi(48, 0.15, GeneratorConfig::uniform(5, 1, 20))
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dsketch_store_pipeline_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn build_save_load_round_trip_matches_in_memory_estimates() {
        let graph = graph();
        let path = temp_path("tz.dsk");
        let spec = SchemeSpec::thorup_zwick(2);
        let config = SchemeConfig::default().with_seed(7);
        let (contents, bytes) = build_and_save(&graph, spec, &config, &path).unwrap();
        assert!(bytes > 0);
        assert_eq!(contents.fingerprint, graph.fingerprint());

        let loaded = load_oracle_for_graph(&path, &graph).unwrap();
        let direct = contents.sketches.as_oracle();
        for (u, v) in [(0u32, 1u32), (3, 40), (17, 23)] {
            assert_eq!(
                loaded.estimate(NodeId(u), NodeId(v)).unwrap(),
                direct.estimate(NodeId(u), NodeId(v)).unwrap()
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parallel_engine_snapshots_answer_like_simulated_ones() {
        let graph = graph();
        for spec in SchemeSpec::all_families() {
            let seed = 11;
            let simulated =
                build_stored(&graph, spec, &SchemeConfig::default().with_seed(seed)).unwrap();
            let parallel = build_stored(
                &graph,
                spec,
                &SchemeConfig::default()
                    .with_seed(seed)
                    .with_parallel_build()
                    .with_threads(2),
            )
            .unwrap();
            let (a, b) = (
                simulated.sketches.as_oracle(),
                parallel.sketches.as_oracle(),
            );
            for u in 0..48u32 {
                let v = NodeId((u * 7 + 3) % 48);
                let u = NodeId(u);
                assert_eq!(a.estimate(u, v).ok(), b.estimate(u, v).ok(), "{spec}");
                assert_eq!(a.words(u), b.words(u), "{spec}");
            }
            // The parallel engine records no simulated rounds.
            assert_eq!(parallel.build_stats.as_ref().unwrap().rounds, 0);
        }
    }

    #[test]
    fn frozen_load_answers_like_the_map_path_for_every_family() {
        let graph = graph();
        for (index, spec) in SchemeSpec::all_families().into_iter().enumerate() {
            let path = temp_path(&format!("frozen_{index}.dsk"));
            let config = SchemeConfig::default().with_seed(9).with_parallel_build();
            let (contents, _) = build_and_save(&graph, spec, &config, &path).unwrap();

            let map_oracle = load_oracle(&path).unwrap();
            let frozen = load_frozen_oracle(&path).unwrap();
            assert_eq!(frozen.scheme_name(), spec.name(), "{spec}");
            assert_eq!(frozen.num_nodes(), map_oracle.num_nodes(), "{spec}");
            assert_eq!(frozen.stretch_bound(), map_oracle.stretch_bound(), "{spec}");
            for u in 0..48u32 {
                let v = NodeId((u * 11 + 5) % 48);
                let u = NodeId(u);
                assert_eq!(
                    frozen.estimate(u, v).ok(),
                    map_oracle.estimate(u, v).ok(),
                    "{spec}: frozen estimate differs at ({u}, {v})"
                );
                assert_eq!(frozen.words(u), map_oracle.words(u), "{spec}");
            }

            // The bytes-direct decode and the freeze of the decoded set are
            // the same value — two roads to one representation.
            let via_freeze = contents.sketches.freeze();
            let raw_bytes = contents.sketches.encode_payload();
            let via_bytes = FlatSketchSet::from_family_bytes(&spec, &raw_bytes).unwrap();
            assert_eq!(via_bytes, via_freeze, "{spec}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn fingerprint_mismatch_is_refused_with_a_typed_error() {
        let graph = graph();
        let path = temp_path("fp.dsk");
        build_and_save(
            &graph,
            SchemeSpec::three_stretch(0.4),
            &SchemeConfig::default().with_seed(3),
            &path,
        )
        .unwrap();

        // A structurally different graph (one extra node) must be refused.
        let other = erdos_renyi(49, 0.15, GeneratorConfig::uniform(5, 1, 20));
        let err = match load_oracle_for_graph(&path, &other) {
            Ok(_) => panic!("mismatched graph must be refused"),
            Err(e) => e,
        };
        assert!(
            matches!(err, StoreError::FingerprintMismatch { .. }),
            "{err}"
        );
        // But the untyped load still works (fingerprint checking is the
        // caller's choice when no graph is at hand).
        assert!(load_oracle(&path).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inspect_reports_the_section_table() {
        let graph = graph();
        let path = temp_path("inspect.dsk");
        build_and_save(
            &graph,
            SchemeSpec::thorup_zwick(2),
            &SchemeConfig::default().with_seed(1),
            &path,
        )
        .unwrap();
        let summary = inspect_snapshot(&path).unwrap();
        assert_eq!(summary.version, crate::format::FORMAT_VERSION);
        assert_eq!(summary.num_nodes, 48);
        assert!(summary.max_words > 0);
        assert_eq!(summary.sections.len(), 2, "SKCH + STAT");
        // The entities column decodes what is *in* each section, not just
        // how many bytes it holds.
        assert!(
            matches!(
                summary.section_entities[0],
                SectionEntities::Sketches {
                    layers: 1,
                    nodes: 48,
                    bunch_entries
                } if bunch_entries > 0
            ),
            "{:?}",
            summary.section_entities[0]
        );
        assert_eq!(
            summary.section_entities[1],
            SectionEntities::BuildStats { records: 1 }
        );
        assert!(summary.build_stats.unwrap().rounds > 0);
        assert_eq!(summary.total_bytes, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edge_list_one_shot_pipeline() {
        let graph = graph();
        let edges = temp_path("graph.edges");
        netgraph::io::save_edge_list(&graph, &edges).unwrap();
        let out = temp_path("from_edges.dsk");
        let (loaded_graph, contents, _) = build_and_save_from_edge_list(
            &edges,
            SchemeSpec::thorup_zwick(2),
            &SchemeConfig::default().with_seed(7),
            &out,
        )
        .unwrap();
        assert_eq!(loaded_graph.fingerprint(), graph.fingerprint());
        assert_eq!(contents.fingerprint, graph.fingerprint());
        // The snapshot built from the re-loaded graph serves against the
        // original graph: the fingerprints agree.
        assert!(load_oracle_for_graph(&out, &graph).is_ok());
        std::fs::remove_file(&edges).ok();
        std::fs::remove_file(&out).ok();
    }

    #[test]
    fn missing_sketch_section_is_a_typed_error() {
        let graph = graph();
        let writer = SnapshotWriter::new(SchemeSpec::thorup_zwick(2), graph.fingerprint());
        let path = temp_path("empty.dsk");
        let file = std::fs::File::create(&path).unwrap();
        writer.write_to(file).unwrap();
        let err = match load_oracle(&path) {
            Ok(_) => panic!("snapshot without a SKCH section must be refused"),
            Err(e) => e,
        };
        assert!(matches!(err, StoreError::MissingSection { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
