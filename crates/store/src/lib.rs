//! `dsketch-store` — versioned binary persistence for distance sketches.
//!
//! The paper's value proposition is asymmetric: construction costs
//! `Õ(n^{1/2+1/k} + D)` CONGEST rounds, but once the labels exist every
//! distance query is answered from two labels alone.  That bargain only
//! pays off if the expensive half is paid **once** — which means sketches
//! must outlive the process that built them.  This crate is that missing
//! half-life: a dependency-free, versioned, checksummed binary snapshot
//! format (`DSK1`) for every sketch family, and the pipeline that moves
//! sketches through their full lifecycle:
//!
//! ```text
//! build ──► save ──► inspect ──► load ──► serve
//! (CONGEST   (DSK1    (header +   (CRC-     (SketchServer::
//!  rounds,    file)    sections)   verified   from_snapshot)
//!  once)                           oracle)
//! ```
//!
//! # Format at a glance
//!
//! A snapshot is a [`format::Header`] (magic `DSK1`, major version, the
//! [`SchemeSpec`](dsketch::SchemeSpec) it was built with, the
//! [`GraphFingerprint`](netgraph::GraphFingerprint) of the graph it was
//! built on, and a section table) followed by contiguous sections, each
//! CRC-32 checked.  Payload encodings are the stable little-endian
//! [`SketchCodec`](dsketch::codec::SketchCodec) layer in `dsketch::codec`.
//! See `format` for the byte layout and the versioning policy, and
//! ARCHITECTURE.md's *Persistence* section for the full diagram.
//!
//! # Safety properties
//!
//! * **Corruption is detected, never served**: truncation, bit flips, and
//!   inconsistent section tables all fail with a typed [`StoreError`].
//! * **Wrong-graph loads are refused**: [`load_oracle_for_graph`] compares
//!   the snapshot's stored fingerprint against the supplied graph.
//! * **Round trips are exact**: a loaded oracle returns bit-identical
//!   `estimate(u, v)` to the freshly built one, for every family.
//!
//! # Example
//!
//! ```
//! use dsketch::prelude::*;
//! use dsketch_store::{build_and_save, load_oracle_for_graph};
//! use netgraph::generators::{erdos_renyi, GeneratorConfig};
//! use netgraph::NodeId;
//!
//! let graph = erdos_renyi(48, 0.15, GeneratorConfig::uniform(5, 1, 20));
//! let dir = std::env::temp_dir().join("dsketch_store_doctest");
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("tz2.dsk");
//!
//! // Pay the construction once, keep the artifact.
//! let (contents, bytes) = build_and_save(
//!     &graph,
//!     SchemeSpec::thorup_zwick(2),
//!     &SchemeConfig::default().with_seed(7),
//!     &path,
//! )
//! .unwrap();
//! assert!(bytes > 0);
//!
//! // Cold-start from the snapshot: no CONGEST rounds, same answers.
//! let oracle = load_oracle_for_graph(&path, &graph).unwrap();
//! assert_eq!(
//!     oracle.estimate(NodeId(0), NodeId(40)).unwrap(),
//!     contents.sketches.as_oracle().estimate(NodeId(0), NodeId(40)).unwrap(),
//! );
//! # std::fs::remove_file(&path).ok();
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod crc32;
pub mod error;
pub mod format;
pub mod pipeline;
pub mod snapshot;
pub mod watch;

pub use error::StoreError;
pub use format::{SectionId, FORMAT_VERSION, MAGIC, SECTION_BUILD_STATS, SECTION_SKETCHES};
pub use pipeline::{
    build_and_save, build_and_save_from_edge_list, build_stored, inspect_snapshot,
    load_frozen_oracle, load_oracle, load_oracle_for_graph, load_snapshot, peek_snapshot_meta,
    read_frozen_oracle, read_snapshot, save_snapshot, snapshot_tmp_path, write_snapshot,
    SectionEntities, SnapshotContents, SnapshotSummary, StoredSketches,
};
pub use snapshot::{RawSnapshot, SnapshotReader, SnapshotWriter};
pub use watch::{WatchCore, WatchOutcome};
