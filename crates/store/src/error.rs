//! The typed error surface of the persistence layer.
//!
//! Everything that can go wrong between bytes and a queryable oracle is an
//! explicit [`StoreError`] variant — a corrupted, truncated, or mismatched
//! snapshot is always reported, never a panic and never a silently wrong
//! oracle.

use crate::format::SectionId;
use dsketch::codec::CodecError;
use dsketch::SketchError;
use netgraph::GraphFingerprint;

/// Errors produced while saving, loading, or validating a sketch snapshot.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure (file system, pipe).
    Io(std::io::Error),
    /// The stream ended before the named part could be read (truncated
    /// file).
    Truncated {
        /// Which part of the snapshot was being read.
        context: &'static str,
    },
    /// The stream does not start with the `DSK1` magic — not a snapshot.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The snapshot was written by an incompatible (newer) major format
    /// version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Highest version this build understands.
        supported: u32,
    },
    /// The header bytes do not match their own checksum (header corruption).
    HeaderChecksumMismatch {
        /// CRC recorded in the file.
        expected: u32,
        /// CRC of the bytes actually read.
        actual: u32,
    },
    /// A section's payload does not match the checksum in the section
    /// table (payload corruption).
    SectionChecksumMismatch {
        /// The corrupted section.
        section: SectionId,
        /// CRC recorded in the section table.
        expected: u32,
        /// CRC of the payload actually read.
        actual: u32,
    },
    /// The section table itself is inconsistent (overlapping or
    /// out-of-order sections, lengths exceeding the payload).
    MalformedSectionTable {
        /// Description of the inconsistency.
        message: String,
    },
    /// A section required to reconstruct the oracle is absent.
    MissingSection {
        /// The absent section.
        section: SectionId,
    },
    /// A section's payload failed to decode.
    Codec {
        /// The section being decoded.
        section: SectionId,
        /// The underlying decode failure.
        source: CodecError,
    },
    /// The snapshot was built on a different graph than the one supplied.
    FingerprintMismatch {
        /// Fingerprint recorded in the snapshot header.
        snapshot: GraphFingerprint,
        /// Fingerprint of the supplied graph.
        graph: GraphFingerprint,
    },
    /// A sketch-construction or serving error from the core crate (e.g.
    /// during `build_and_save`).
    Sketch(SketchError),
    /// An edge-list parse error (during the edge-list → build → save
    /// pipeline).
    EdgeList(netgraph::io::IoError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            StoreError::BadMagic { found } => write!(
                f,
                "not a DSK1 snapshot (magic bytes {:02x} {:02x} {:02x} {:02x})",
                found[0], found[1], found[2], found[3]
            ),
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is newer than the supported version {supported}"
            ),
            StoreError::HeaderChecksumMismatch { expected, actual } => write!(
                f,
                "header checksum mismatch: stored {expected:08x}, computed {actual:08x}"
            ),
            StoreError::SectionChecksumMismatch {
                section,
                expected,
                actual,
            } => write!(
                f,
                "section {section} checksum mismatch: stored {expected:08x}, computed {actual:08x}"
            ),
            StoreError::MalformedSectionTable { message } => {
                write!(f, "malformed section table: {message}")
            }
            StoreError::MissingSection { section } => {
                write!(f, "required section {section} is missing")
            }
            StoreError::Codec { section, source } => {
                write!(f, "section {section} failed to decode: {source}")
            }
            StoreError::FingerprintMismatch { snapshot, graph } => write!(
                f,
                "snapshot was built on a different graph: snapshot has {snapshot}, \
                 supplied graph has {graph}"
            ),
            StoreError::Sketch(e) => write!(f, "sketch error: {e}"),
            StoreError::EdgeList(e) => write!(f, "edge list error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Codec { source, .. } => Some(source),
            StoreError::Sketch(e) => Some(e),
            StoreError::EdgeList(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<SketchError> for StoreError {
    fn from(e: SketchError) -> Self {
        StoreError::Sketch(e)
    }
}

impl From<netgraph::io::IoError> for StoreError {
    fn from(e: netgraph::io::IoError) -> Self {
        StoreError::EdgeList(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_failure() {
        assert!(StoreError::BadMagic { found: *b"ELF\0" }
            .to_string()
            .contains("DSK1"));
        assert!(StoreError::UnsupportedVersion {
            found: 9,
            supported: 1
        }
        .to_string()
        .contains("version 9"));
        assert!(StoreError::Truncated { context: "header" }
            .to_string()
            .contains("header"));
        let section = SectionId(*b"SKCH");
        assert!(StoreError::MissingSection { section }
            .to_string()
            .contains("SKCH"));
        assert!(StoreError::SectionChecksumMismatch {
            section,
            expected: 1,
            actual: 2
        }
        .to_string()
        .contains("checksum"));
    }
}
