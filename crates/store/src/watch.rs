//! The rebuild-and-swap watch loop's core: detect graph change, rebuild.
//!
//! `dsketch-store watch` keeps a snapshot fresh against an evolving
//! edge-list file: every poll it re-loads the graph, compares its
//! [`GraphFingerprint`] to the one the current snapshot was built on, and
//! rebuilds + re-saves only when they differ.  The CLI (and any embedding)
//! then tells a live [`SketchServer`](https://docs.rs) to hot-swap the
//! fresh snapshot in — see ARCHITECTURE.md's *Live snapshots* section.
//!
//! The loop itself (sleep cadence, signal handling, the network swap call)
//! lives in the binary; this module is the deterministic, testable core:
//! one [`WatchCore::check_once`] call per poll tick.

use crate::error::StoreError;
use crate::pipeline::{build_and_save, peek_snapshot_meta};
use dsketch::prelude::{SchemeConfig, SchemeSpec};
use netgraph::GraphFingerprint;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// What one poll tick observed and did.
#[derive(Debug)]
pub enum WatchOutcome {
    /// The graph's fingerprint matches the last built snapshot — nothing
    /// to do.
    Unchanged {
        /// The (unchanged) fingerprint.
        fingerprint: GraphFingerprint,
    },
    /// The graph changed: a fresh snapshot was built and saved over
    /// `snapshot_path`.
    Rebuilt {
        /// Fingerprint of the graph the new snapshot was built on.
        fingerprint: GraphFingerprint,
        /// Node count of the rebuilt graph.
        nodes: usize,
        /// Snapshot bytes written.
        bytes: u64,
    },
}

/// The testable heart of `dsketch-store watch`: graph-change detection
/// plus rebuild-and-save, one tick at a time.
#[derive(Debug)]
pub struct WatchCore {
    graph_path: PathBuf,
    snapshot_path: PathBuf,
    spec: SchemeSpec,
    config: SchemeConfig,
    last: Option<GraphFingerprint>,
    /// Ticks in a row that ended in an error; resets to zero on any
    /// successful tick.  Drives [`WatchCore::next_delay`]'s backoff.
    consecutive_failures: u32,
    /// SplitMix64 state for deterministic backoff jitter.
    jitter_state: u64,
}

impl WatchCore {
    /// A watcher over the edge list at `graph_path`, keeping the `DSK1`
    /// file at `snapshot_path` fresh with `spec` builds under `config`.
    /// The first [`check_once`](Self::check_once) always rebuilds unless
    /// the watcher is [primed](Self::prime) first.
    pub fn new<P: AsRef<Path>, Q: AsRef<Path>>(
        graph_path: P,
        snapshot_path: Q,
        spec: SchemeSpec,
        config: SchemeConfig,
    ) -> WatchCore {
        WatchCore {
            graph_path: graph_path.as_ref().to_path_buf(),
            snapshot_path: snapshot_path.as_ref().to_path_buf(),
            spec,
            config,
            last: None,
            consecutive_failures: 0,
            jitter_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Seed the change detector with the fingerprint of an already built
    /// snapshot, so an unchanged graph does not trigger a rebuild on the
    /// very first tick.
    pub fn prime(&mut self, fingerprint: GraphFingerprint) {
        self.last = Some(fingerprint);
    }

    /// Try to seed the change detector from the snapshot file itself
    /// (header peek only — no sketch decode).  Returns `true` when a
    /// valid snapshot with the watcher's scheme was found; any other
    /// state (missing file, corrupt header, different scheme) leaves the
    /// watcher unprimed so the first tick rebuilds.
    pub fn prime_from_snapshot(&mut self) -> bool {
        match peek_snapshot_meta(&self.snapshot_path) {
            Ok((spec, fingerprint)) if spec == self.spec => {
                self.last = Some(fingerprint);
                true
            }
            _ => false,
        }
    }

    /// The fingerprint the last built (or primed) snapshot corresponds
    /// to, if any.
    pub fn last_fingerprint(&self) -> Option<GraphFingerprint> {
        self.last
    }

    /// One poll tick: reload the edge list, compare fingerprints, rebuild
    /// and save when they differ.
    ///
    /// Errors are *survivable by design*: state (`last_fingerprint`) only
    /// advances on success, so a failed tick — edge list mid-rewrite, a
    /// rebuild error, a failed save — retries from scratch on the next
    /// tick while whatever snapshot is on disk keeps serving.  The core
    /// counts [`consecutive_failures`](Self::consecutive_failures) so the
    /// embedding loop can pace retries with [`next_delay`](Self::next_delay).
    pub fn check_once(&mut self) -> Result<WatchOutcome, StoreError> {
        let outcome = self.tick();
        match &outcome {
            Ok(_) => self.consecutive_failures = 0,
            Err(_) => {
                self.consecutive_failures = self.consecutive_failures.saturating_add(1);
            }
        }
        outcome
    }

    fn tick(&mut self) -> Result<WatchOutcome, StoreError> {
        if let Some(fault) = dsketch_faults::fail_point!("watch.rebuild") {
            return Err(StoreError::Io(fault.io_error("watch.rebuild")));
        }
        let graph = netgraph::io::load_edge_list(&self.graph_path)?;
        let fingerprint = graph.fingerprint();
        if self.last == Some(fingerprint) {
            return Ok(WatchOutcome::Unchanged { fingerprint });
        }
        let (_, bytes) = build_and_save(&graph, self.spec, &self.config, &self.snapshot_path)?;
        self.last = Some(fingerprint);
        Ok(WatchOutcome::Rebuilt {
            fingerprint,
            nodes: graph.num_nodes(),
            bytes,
        })
    }

    /// Ticks in a row that ended in an error (0 after any success).
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// How long the embedding loop should sleep before the next tick:
    /// `base` while healthy; after `f` consecutive failures, an
    /// exponential `base · 2^f` capped at `cap`, with deterministic
    /// jitter: the delay is drawn uniformly from the upper half of the
    /// interval (`[raw/2, raw]`), so a fleet of watchers desynchronizes
    /// instead of retrying in lock step while the expected delay still
    /// doubles per failure until the cap.
    pub fn next_delay(&mut self, base: Duration, cap: Duration) -> Duration {
        if self.consecutive_failures == 0 {
            return base;
        }
        let exponent = self.consecutive_failures.min(16);
        let raw = base
            .saturating_mul(2u32.saturating_pow(exponent))
            .min(cap.max(base));
        self.jitter_state = splitmix64(self.jitter_state);
        let nanos = u64::try_from(raw.as_nanos()).unwrap_or(u64::MAX);
        let half = nanos / 2;
        Duration::from_nanos(half + self.jitter_state % (nanos - half + 1))
    }
}

/// SplitMix64 step — the workspace's standard deterministic mixer.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators::{erdos_renyi, GeneratorConfig};

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("dsketch_store_watch_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn first_tick_rebuilds_then_unchanged_until_the_graph_moves() {
        let graph = erdos_renyi(32, 0.2, GeneratorConfig::uniform(5, 1, 10));
        let edges = temp_path("watch.edges");
        let snap = temp_path("watch.dsk");
        netgraph::io::save_edge_list(&graph, &edges).unwrap();

        let mut core = WatchCore::new(
            &edges,
            &snap,
            SchemeSpec::thorup_zwick(2),
            SchemeConfig::default().with_seed(5).with_parallel_build(),
        );
        assert!(matches!(
            core.check_once().unwrap(),
            WatchOutcome::Rebuilt { nodes: 32, .. }
        ));
        assert!(matches!(
            core.check_once().unwrap(),
            WatchOutcome::Unchanged { .. }
        ));

        // Rewrite the edge list with a different graph: the next tick
        // rebuilds and the snapshot's stored fingerprint follows.
        let moved = erdos_renyi(33, 0.2, GeneratorConfig::uniform(5, 1, 10));
        netgraph::io::save_edge_list(&moved, &edges).unwrap();
        assert!(matches!(
            core.check_once().unwrap(),
            WatchOutcome::Rebuilt { nodes: 33, .. }
        ));
        let (_, stored) = peek_snapshot_meta(&snap).unwrap();
        assert_eq!(stored, moved.fingerprint());
        assert_eq!(core.last_fingerprint(), Some(moved.fingerprint()));

        std::fs::remove_file(&edges).ok();
        std::fs::remove_file(&snap).ok();
    }

    #[test]
    fn priming_from_a_matching_snapshot_skips_the_first_rebuild() {
        let graph = erdos_renyi(24, 0.25, GeneratorConfig::uniform(5, 1, 10));
        let edges = temp_path("primed.edges");
        let snap = temp_path("primed.dsk");
        netgraph::io::save_edge_list(&graph, &edges).unwrap();
        let spec = SchemeSpec::thorup_zwick(2);
        let config = SchemeConfig::default().with_seed(5).with_parallel_build();
        build_and_save(&graph, spec, &config, &snap).unwrap();

        let mut core = WatchCore::new(&edges, &snap, spec, config);
        assert!(core.prime_from_snapshot());
        assert!(matches!(
            core.check_once().unwrap(),
            WatchOutcome::Unchanged { .. }
        ));

        // A snapshot built with a *different* scheme must not prime.
        let mut other = WatchCore::new(&edges, &snap, SchemeSpec::three_stretch(0.5), config);
        assert!(!other.prime_from_snapshot());
        assert_eq!(other.last_fingerprint(), None);

        std::fs::remove_file(&edges).ok();
        std::fs::remove_file(&snap).ok();
    }

    #[test]
    fn backoff_grows_while_failing_and_resets_on_success() {
        let edges = temp_path("backoff.edges");
        let snap = temp_path("backoff.dsk");
        std::fs::remove_file(&edges).ok();
        let mut core = WatchCore::new(
            &edges,
            &snap,
            SchemeSpec::thorup_zwick(2),
            SchemeConfig::default().with_seed(5).with_parallel_build(),
        );
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(5);
        assert_eq!(
            core.next_delay(base, cap),
            base,
            "healthy loop polls at base"
        );

        // Missing edge list: every tick fails, the failure count climbs,
        // and each jittered delay lands in the upper half of the capped
        // exponential interval — so expected delay doubles per failure.
        for failures in 1..=8u32 {
            assert!(core.check_once().is_err());
            assert_eq!(core.consecutive_failures(), failures);
            let raw = base.saturating_mul(2u32.pow(failures)).min(cap);
            let delay = core.next_delay(base, cap);
            assert!(
                delay >= raw / 2 && delay <= raw,
                "failure {failures}: delay {delay:?} outside [{:?}, {raw:?}]",
                raw / 2
            );
        }
        assert!(
            core.next_delay(base, cap) >= cap / 2,
            "eight failures reach the capped interval"
        );

        // The edge list appears: the next tick succeeds, failures reset,
        // and the loop returns to its base cadence.
        let graph = erdos_renyi(16, 0.3, GeneratorConfig::uniform(5, 1, 10));
        netgraph::io::save_edge_list(&graph, &edges).unwrap();
        assert!(matches!(
            core.check_once().unwrap(),
            WatchOutcome::Rebuilt { nodes: 16, .. }
        ));
        assert_eq!(core.consecutive_failures(), 0);
        assert_eq!(core.next_delay(base, cap), base);

        std::fs::remove_file(&edges).ok();
        std::fs::remove_file(&snap).ok();
    }

    #[test]
    fn missing_edge_list_is_a_typed_error_and_keeps_state() {
        let mut core = WatchCore::new(
            temp_path("nope.edges"),
            temp_path("nope.dsk"),
            SchemeSpec::thorup_zwick(2),
            SchemeConfig::default(),
        );
        assert!(core.check_once().is_err());
        assert_eq!(core.last_fingerprint(), None);
        assert!(!core.prime_from_snapshot());
    }
}
