//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the per-section
//! corruption check of the `DSK1` format.
//!
//! Hand-rolled so the store stays dependency-free; the table is built at
//! compile time.  This is the same CRC as zlib/PNG, so snapshots can be
//! cross-checked with standard tools (`python3 -c 'import zlib, sys;
//! print(hex(zlib.crc32(open(sys.argv[1], "rb").read())))' section.bin`).

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // dsketch-lint: allow(checked-casts): const context — `From` impls are not const-callable on this toolchain
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc = TABLE[usize::from(dsketch::cast::low_byte(crc ^ u32::from(byte)))] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flips_change_the_crc() {
        let base = b"distance sketches".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "byte {byte} bit {bit}");
            }
        }
    }
}
