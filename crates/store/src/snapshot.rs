//! Streaming the `DSK1` container to and from `Write` / `Read`.
//!
//! [`SnapshotWriter`] buffers named sections, then emits the header
//! (section table with offsets and CRCs) followed by the payloads in one
//! pass — so it can target any `Write`, including pipes.  [`SnapshotReader`]
//! consumes any `Read` sequentially: prelude, header block, payload; the
//! payload is read **once** into a single buffer and sections are handed
//! out as slices of it (no per-section copies), which is what makes loading
//! a large snapshot cheap next to rebuilding it.

use crate::crc32::crc32;
use crate::error::StoreError;
use crate::format::{Header, SectionEntry, SectionId, FORMAT_VERSION};
use dsketch::cast;
use dsketch::SchemeSpec;
use netgraph::GraphFingerprint;
use std::io::{Read, Write};

/// Builds a snapshot: declare the identity (scheme + graph fingerprint),
/// add sections, write everything out in one pass.
#[derive(Debug)]
pub struct SnapshotWriter {
    spec: SchemeSpec,
    fingerprint: GraphFingerprint,
    sections: Vec<(SectionId, Vec<u8>)>,
}

impl SnapshotWriter {
    /// A writer for sketches of `spec` built on a graph with `fingerprint`.
    pub fn new(spec: SchemeSpec, fingerprint: GraphFingerprint) -> Self {
        SnapshotWriter {
            spec,
            fingerprint,
            sections: Vec::new(),
        }
    }

    /// Append a section.  Sections are written in insertion order; ids
    /// should be unique (readers take the first match).
    pub fn add_section(&mut self, id: SectionId, payload: Vec<u8>) -> &mut Self {
        self.sections.push((id, payload));
        self
    }

    /// Write the complete snapshot to `writer`.  Returns the total number
    /// of bytes written.
    pub fn write_to<W: Write>(&self, mut writer: W) -> Result<u64, StoreError> {
        let mut entries = Vec::with_capacity(self.sections.len());
        let mut offset = 0u64;
        for (id, payload) in &self.sections {
            entries.push(SectionEntry {
                id: *id,
                offset,
                len: cast::u64_from_usize(payload.len()),
                crc: crc32(payload),
            });
            offset += cast::u64_from_usize(payload.len());
        }
        let header = Header {
            version: FORMAT_VERSION,
            spec: self.spec,
            fingerprint: self.fingerprint,
            sections: entries,
        };
        let header_bytes = header.to_bytes()?;
        writer.write_all(&header_bytes)?;
        for (_, payload) in &self.sections {
            match dsketch_faults::fail_point!("store.write.section") {
                None => {}
                Some(dsketch_faults::Fault::Partial(n)) => {
                    // A torn section write: flush the allowed prefix so the
                    // truncation really lands in the stream, then fail.
                    let keep = usize::try_from(n).unwrap_or(usize::MAX).min(payload.len());
                    writer.write_all(&payload[..keep])?;
                    writer.flush()?;
                    return Err(StoreError::Io(
                        dsketch_faults::Fault::Partial(n).io_error("store.write.section"),
                    ));
                }
                Some(fault) => return Err(StoreError::Io(fault.io_error("store.write.section"))),
            }
            writer.write_all(payload)?;
        }
        writer.flush()?;
        Ok(cast::u64_from_usize(header_bytes.len()) + offset)
    }
}

/// A fully read, CRC-verified snapshot: the header plus one payload buffer,
/// with sections exposed as slices into it.
#[derive(Debug, Clone)]
pub struct RawSnapshot {
    header: Header,
    payload: Vec<u8>,
    /// Total on-disk size (header block + payload), for reporting.
    total_bytes: u64,
}

impl RawSnapshot {
    /// The verified header.
    pub fn header(&self) -> &Header {
        &self.header
    }

    /// The scheme recorded in the header.
    pub fn spec(&self) -> SchemeSpec {
        self.header.spec
    }

    /// The graph fingerprint recorded in the header.
    pub fn fingerprint(&self) -> GraphFingerprint {
        self.header.fingerprint
    }

    /// Total snapshot size in bytes (header + payload).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The payload of the first section with `id`, if present.  Unknown
    /// sections are simply never asked for — that is the forward-compat
    /// path: a newer writer's extra sections are carried and ignored.
    pub fn section(&self, id: SectionId) -> Option<&[u8]> {
        self.header
            .sections
            .iter()
            .find(|s| s.id == id)
            .and_then(|s| {
                // Offsets were range-checked against the payload when the
                // snapshot was read, so the `?`s below never fire in practice;
                // they just make that a local fact instead of a panic site.
                let lo = cast::to_usize(s.offset).ok()?;
                let len = cast::to_usize(s.len).ok()?;
                self.payload.get(lo..lo.checked_add(len)?)
            })
    }

    /// Like [`RawSnapshot::section`] but a [`StoreError::MissingSection`]
    /// when absent.
    pub fn require_section(&self, id: SectionId) -> Result<&[u8], StoreError> {
        self.section(id)
            .ok_or(StoreError::MissingSection { section: id })
    }
}

/// Reads and verifies a snapshot from any `Read`.
#[derive(Debug)]
pub struct SnapshotReader<R: Read> {
    inner: R,
}

impl<R: Read> SnapshotReader<R> {
    /// A reader over `inner`.
    pub fn new(inner: R) -> Self {
        SnapshotReader { inner }
    }

    /// Read the whole snapshot: parse and CRC-check the header, read the
    /// payload area, CRC-check every section.  Fails with a typed
    /// [`StoreError`] on truncation, corruption, or version mismatch.
    pub fn read(mut self) -> Result<RawSnapshot, StoreError> {
        if let Some(fault) = dsketch_faults::fail_point!("store.load.read") {
            return Err(StoreError::Io(fault.io_error("store.load.read")));
        }
        let mut prelude = [0u8; 12];
        read_exact(&mut self.inner, &mut prelude, "prelude")?;
        // Check magic and version *before* trusting the header length, so a
        // non-snapshot file fails as "not a snapshot", not as a huge
        // garbage-length read.
        // A [u8; 12] prelude always splits into three 4-byte fields; the
        // array constructors below make that a type-level fact instead of
        // a panicking slice conversion.
        let magic = [prelude[0], prelude[1], prelude[2], prelude[3]];
        if magic != crate::format::MAGIC {
            return Err(StoreError::BadMagic { found: magic });
        }
        let version = u32::from_le_bytes([prelude[4], prelude[5], prelude[6], prelude[7]]);
        if version > crate::format::FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: crate::format::FORMAT_VERSION,
            });
        }
        let header_len = cast::usize_from_u32(u32::from_le_bytes([
            prelude[8],
            prelude[9],
            prelude[10],
            prelude[11],
        ]));
        // Same streaming discipline as the payload below: never allocate
        // the untrusted declared length up front.  A crafted prelude
        // claiming a ~4 GiB header costs only as much memory as the stream
        // actually contains and fails as Truncated, not as an OOM attempt.
        let mut block = Vec::new();
        self.inner
            .by_ref()
            .take(cast::u64_from_usize(header_len))
            .read_to_end(&mut block)?;
        if block.len() < header_len {
            return Err(StoreError::Truncated { context: "header" });
        }
        let header = Header::from_parts(&prelude, &block)?;

        let payload_len = header.payload_len();
        usize::try_from(payload_len).map_err(|_| StoreError::MalformedSectionTable {
            message: format!("payload length {payload_len} does not fit in memory"),
        })?;
        // Read through `take` rather than pre-allocating the declared
        // length: a crafted header claiming a huge payload then costs only
        // as much memory as the stream actually contains, and a short
        // stream surfaces as Truncated instead of an OOM attempt.
        let mut payload = Vec::new();
        self.inner
            .by_ref()
            .take(payload_len)
            .read_to_end(&mut payload)?;
        if cast::u64_from_usize(payload.len()) < payload_len {
            return Err(StoreError::Truncated {
                context: "section payload",
            });
        }

        for entry in &header.sections {
            let malformed = |what: &str| StoreError::MalformedSectionTable {
                message: format!("section {} {what}", entry.id),
            };
            let lo = cast::to_usize(entry.offset).map_err(|_| malformed("offset overflows"))?;
            let len = cast::to_usize(entry.len).map_err(|_| malformed("length overflows"))?;
            let hi = lo
                .checked_add(len)
                .ok_or_else(|| malformed("extent overflows"))?;
            let bytes = payload
                .get(lo..hi)
                .ok_or_else(|| malformed("extent exceeds payload"))?;
            let actual = crc32(bytes);
            if actual != entry.crc {
                return Err(StoreError::SectionChecksumMismatch {
                    section: entry.id,
                    expected: entry.crc,
                    actual,
                });
            }
        }

        Ok(RawSnapshot {
            total_bytes: 12 + cast::u64_from_usize(header_len) + payload_len,
            header,
            payload,
        })
    }
}

fn read_exact<R: Read>(
    reader: &mut R,
    buf: &mut [u8],
    context: &'static str,
) -> Result<(), StoreError> {
    reader.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            StoreError::Truncated { context }
        } else {
            StoreError::Io(e)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{SECTION_BUILD_STATS, SECTION_SKETCHES};

    fn fingerprint() -> GraphFingerprint {
        GraphFingerprint {
            nodes: 5,
            edges: 4,
            weight_checksum: 42,
        }
    }

    fn sample_bytes() -> Vec<u8> {
        let mut writer = SnapshotWriter::new(SchemeSpec::cdg(0.25, 2), fingerprint());
        writer.add_section(SECTION_SKETCHES, vec![1, 2, 3, 4, 5]);
        writer.add_section(SECTION_BUILD_STATS, vec![9; 48]);
        let mut out = Vec::new();
        let written = writer.write_to(&mut out).unwrap();
        assert_eq!(written as usize, out.len());
        out
    }

    #[test]
    fn huge_declared_header_length_is_truncated_not_oom() {
        // A 12-byte file that passes the magic/version checks but claims a
        // ~4 GiB header must fail as Truncated without allocating it.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&crate::format::MAGIC);
        bytes.extend_from_slice(&crate::format::FORMAT_VERSION.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = SnapshotReader::new(bytes.as_slice()).read().unwrap_err();
        assert!(
            matches!(err, StoreError::Truncated { context: "header" }),
            "{err}"
        );
    }

    #[test]
    fn write_read_round_trip() {
        let bytes = sample_bytes();
        let snapshot = SnapshotReader::new(bytes.as_slice()).read().unwrap();
        assert_eq!(snapshot.spec(), SchemeSpec::cdg(0.25, 2));
        assert_eq!(snapshot.fingerprint(), fingerprint());
        assert_eq!(
            snapshot.section(SECTION_SKETCHES),
            Some(&[1, 2, 3, 4, 5][..])
        );
        assert_eq!(snapshot.section(SECTION_BUILD_STATS).unwrap().len(), 48);
        assert_eq!(snapshot.total_bytes(), bytes.len() as u64);
        assert!(snapshot.section(SectionId(*b"NOPE")).is_none());
        assert!(matches!(
            snapshot.require_section(SectionId(*b"NOPE")),
            Err(StoreError::MissingSection { .. })
        ));
    }

    #[test]
    fn unknown_sections_are_carried_and_ignored() {
        // A "newer writer" adds a section this reader knows nothing about:
        // the known sections must still load.
        let mut writer = SnapshotWriter::new(SchemeSpec::thorup_zwick(2), fingerprint());
        writer.add_section(SectionId(*b"FUTR"), vec![0xAB; 32]);
        writer.add_section(SECTION_SKETCHES, vec![7, 7, 7]);
        let mut bytes = Vec::new();
        writer.write_to(&mut bytes).unwrap();
        let snapshot = SnapshotReader::new(bytes.as_slice()).read().unwrap();
        assert_eq!(snapshot.section(SECTION_SKETCHES), Some(&[7u8, 7, 7][..]));
        assert_eq!(snapshot.section(SectionId(*b"FUTR")).unwrap().len(), 32);
    }

    #[test]
    fn every_truncation_point_is_a_typed_error() {
        let bytes = sample_bytes();
        for cut in 0..bytes.len() {
            let err = SnapshotReader::new(&bytes[..cut]).read().unwrap_err();
            assert!(
                matches!(
                    err,
                    StoreError::Truncated { .. }
                        | StoreError::BadMagic { .. }
                        | StoreError::HeaderChecksumMismatch { .. }
                ),
                "cut at {cut}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn payload_bit_flips_are_detected() {
        let bytes = sample_bytes();
        // Flip one bit in every payload byte (the header flips are covered
        // by the format tests); each must surface as a checksum mismatch.
        let payload_start = bytes.len() - (5 + 48);
        for byte in payload_start..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[byte] ^= 0x01;
            let err = SnapshotReader::new(flipped.as_slice()).read().unwrap_err();
            assert!(
                matches!(err, StoreError::SectionChecksumMismatch { .. }),
                "flip at {byte}: unexpected error {err}"
            );
        }
    }

    #[test]
    fn huge_declared_payload_fails_without_allocating_it() {
        // A self-consistent header (valid magic, version, CRC) whose section
        // table declares a terabyte of payload must fail as Truncated when
        // the bytes are not there — not attempt the allocation up front.
        let header = crate::format::Header {
            version: FORMAT_VERSION,
            spec: SchemeSpec::thorup_zwick(2),
            fingerprint: fingerprint(),
            sections: vec![crate::format::SectionEntry {
                id: SECTION_SKETCHES,
                offset: 0,
                len: 1 << 40,
                crc: 0,
            }],
        };
        let bytes = header.to_bytes().unwrap();
        let err = SnapshotReader::new(bytes.as_slice()).read().unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Truncated {
                    context: "section payload"
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let writer = SnapshotWriter::new(SchemeSpec::degrading(), fingerprint());
        let mut bytes = Vec::new();
        writer.write_to(&mut bytes).unwrap();
        let snapshot = SnapshotReader::new(bytes.as_slice()).read().unwrap();
        assert_eq!(snapshot.spec(), SchemeSpec::degrading());
        assert_eq!(snapshot.header().sections.len(), 0);
    }
}
