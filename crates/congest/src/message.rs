//! Message word-size accounting.
//!
//! A *word* in the CONGEST model is a block of `O(log n)` bits — enough for
//! one node id or one distance value (Section 2.2 of the paper).  The
//! simulator never serializes messages to bits; instead every message type
//! declares how many words it would occupy on the wire, and the engine adds
//! that to the run statistics and (optionally) enforces a per-edge budget.

/// Types that know their size in CONGEST words.
pub trait MessageSize {
    /// Number of `O(log n)`-bit words this message occupies on the wire.
    ///
    /// Conventions used throughout the workspace:
    /// * a node id: 1 word,
    /// * a distance (weights are polynomial in `n`): 1 word,
    /// * a small tag/enum discriminant: 0 words (absorbed into the
    ///   constant factor, as is conventional in CONGEST analyses).
    fn words(&self) -> usize;
}

impl MessageSize for () {
    fn words(&self) -> usize {
        0
    }
}

impl MessageSize for u32 {
    fn words(&self) -> usize {
        1
    }
}

impl MessageSize for u64 {
    fn words(&self) -> usize {
        1
    }
}

impl MessageSize for (u32, u64) {
    fn words(&self) -> usize {
        2
    }
}

impl<T: MessageSize> MessageSize for Option<T> {
    fn words(&self) -> usize {
        self.as_ref().map_or(0, MessageSize::words)
    }
}

impl<T: MessageSize> MessageSize for Box<T> {
    fn words(&self) -> usize {
        self.as_ref().words()
    }
}

impl<T: MessageSize> MessageSize for Vec<T> {
    fn words(&self) -> usize {
        self.iter().map(MessageSize::words).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(().words(), 0);
        assert_eq!(7u32.words(), 1);
        assert_eq!(7u64.words(), 1);
        assert_eq!((3u32, 9u64).words(), 2);
    }

    #[test]
    fn container_sizes() {
        assert_eq!(Some(5u64).words(), 1);
        assert_eq!(None::<u64>.words(), 0);
        assert_eq!(Box::new(4u32).words(), 1);
        assert_eq!(vec![1u64, 2, 3].words(), 3);
        assert_eq!(Vec::<u64>::new().words(), 0);
    }
}
