//! Round, message, and word accounting.
//!
//! These are the quantities the paper's theorems bound (e.g. Theorem 1.1:
//! `O(k n^{1/k} S log n)` rounds and `O(k n^{1/k} S |E| log n)` messages), so
//! the engine tracks them exactly and the experiment harness reports them
//! next to the theoretical predictions.

/// Statistics of one simulated run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Number of rounds executed.
    pub rounds: u64,
    /// Total number of messages delivered over all rounds.
    pub messages: u64,
    /// Total number of CONGEST words carried by those messages.
    pub words: u64,
    /// Largest number of messages delivered in any single round.
    pub max_messages_in_round: u64,
    /// Number of rounds in which at least one message was delivered.
    pub active_rounds: u64,
    /// Number of `(edge, round)` slots where a node attempted to exceed the
    /// per-edge bandwidth budget.  Always 0 for the programs in this
    /// workspace unless a bug is introduced; tracked so model violations are
    /// visible rather than silent.
    pub bandwidth_violations: u64,
}

impl RunStats {
    /// Merge another stats object into this one by summation (used when a
    /// construction is composed of several sequential sub-protocols, e.g.
    /// BFS-tree construction followed by the sketch phases).
    pub fn absorb(&mut self, other: &RunStats) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.words += other.words;
        self.max_messages_in_round = self.max_messages_in_round.max(other.max_messages_in_round);
        self.active_rounds += other.active_rounds;
        self.bandwidth_violations += other.bandwidth_violations;
    }

    /// Average messages per round (0 if no rounds ran).
    pub fn avg_messages_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.messages as f64 / self.rounds as f64
        }
    }

    /// Record the delivery of `messages` messages totalling `words` words in
    /// one round.
    pub(crate) fn record_round(&mut self, messages: u64, words: u64) {
        self.rounds += 1;
        self.messages += messages;
        self.words += words;
        self.max_messages_in_round = self.max_messages_in_round.max(messages);
        if messages > 0 {
            self.active_rounds += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_accumulates() {
        let mut s = RunStats::default();
        s.record_round(10, 20);
        s.record_round(0, 0);
        s.record_round(5, 5);
        assert_eq!(s.rounds, 3);
        assert_eq!(s.messages, 15);
        assert_eq!(s.words, 25);
        assert_eq!(s.max_messages_in_round, 10);
        assert_eq!(s.active_rounds, 2);
        assert!((s.avg_messages_per_round() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn absorb_sums_and_maxes() {
        let mut a = RunStats {
            rounds: 5,
            messages: 100,
            words: 200,
            max_messages_in_round: 40,
            active_rounds: 4,
            bandwidth_violations: 0,
        };
        let b = RunStats {
            rounds: 3,
            messages: 30,
            words: 60,
            max_messages_in_round: 25,
            active_rounds: 3,
            bandwidth_violations: 1,
        };
        a.absorb(&b);
        assert_eq!(a.rounds, 8);
        assert_eq!(a.messages, 130);
        assert_eq!(a.words, 260);
        assert_eq!(a.max_messages_in_round, 40);
        assert_eq!(a.active_rounds, 7);
        assert_eq!(a.bandwidth_violations, 1);
    }

    #[test]
    fn empty_stats_average_is_zero() {
        assert_eq!(RunStats::default().avg_messages_per_round(), 0.0);
    }
}
