//! Reusable CONGEST building blocks.
//!
//! These are the primitives the paper assembles its constructions from:
//!
//! * [`bellman_ford`] — distributed Bellman–Ford (the paper's Algorithm 1),
//!   in single-source, multi-source ("super source"), and per-source
//!   (k-source, round-robin scheduled) variants.
//! * [`bfs_tree`] — leader election plus BFS-tree construction, the
//!   preprocessing step of the Section 3.3 termination-detection protocol.
//! * [`aggregation`] — convergecast (sum/max towards the root of a tree) and
//!   tree broadcast, used to synchronize phases and to collect global
//!   statistics in examples.

pub mod aggregation;
pub mod bellman_ford;
pub mod bfs_tree;

pub use aggregation::{ConvergecastProgram, ConvergecastResult};
pub use bellman_ford::{BellmanFordProgram, KSourceBellmanFord};
pub use bfs_tree::{BfsTreeProgram, TreeInfo};
