//! Distributed Bellman–Ford (the paper's Algorithm 1) and its multi-source
//! variants.
//!
//! * [`BellmanFordProgram`] computes, at every node, the distance to the
//!   closest node of a *source set* (the "super source" construction used in
//!   Lemma 4.5 to find each node's nearest density-net node).  With a
//!   singleton source set it is exactly Algorithm 1.
//! * [`KSourceBellmanFord`] computes, at every node, its distance to *each*
//!   of `k` sources (the k-Source Shortest Paths problem used for phase
//!   `k − 1` of the Thorup–Zwick construction and for the Theorem 4.3
//!   sketches).  To respect the CONGEST bandwidth constraint it keeps one
//!   outgoing queue per source and serves the non-empty queues round-robin,
//!   exactly as described for Algorithm 2; the round complexity is
//!   `O(|sources| · S)` as in Lemma 3.4.

use crate::message::MessageSize;
use crate::node::{NodeContext, NodeProgram};
use netgraph::{add_dist, Distance, NodeId, INFINITY};
use std::collections::BTreeMap;

/// Message carrying a distance-to-source-set announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistanceAnnouncement {
    /// The announced distance from the sender to the source set.
    pub distance: Distance,
}

impl MessageSize for DistanceAnnouncement {
    fn words(&self) -> usize {
        1
    }
}

/// Super-source distributed Bellman–Ford: every node learns `d(u, A)` where
/// `A` is the source set.
#[derive(Debug, Clone)]
pub struct BellmanFordProgram {
    me: NodeId,
    is_source: bool,
    dist: Distance,
    pending_announce: bool,
}

impl BellmanFordProgram {
    /// Create the program for node `me`; `is_source` marks membership in the
    /// source set `A`.
    pub fn new(me: NodeId, is_source: bool) -> Self {
        BellmanFordProgram {
            me,
            is_source,
            dist: if is_source { 0 } else { INFINITY },
            pending_announce: false,
        }
    }

    /// The node this program runs on.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// Distance to the source set discovered so far ([`INFINITY`] if none).
    pub fn distance(&self) -> Distance {
        self.dist
    }
}

impl NodeProgram for BellmanFordProgram {
    type Message = DistanceAnnouncement;

    fn on_start(&mut self, ctx: &mut NodeContext<'_, Self::Message>) {
        if self.is_source {
            ctx.broadcast(DistanceAnnouncement { distance: 0 });
        }
    }

    fn on_round(&mut self, ctx: &mut NodeContext<'_, Self::Message>) {
        // Relax all incoming announcements (Algorithm 1, lines 1–4).
        let mut best = self.dist;
        for inc in ctx.incoming() {
            let candidate = add_dist(inc.message.distance, inc.edge_weight);
            if candidate < best {
                best = candidate;
            }
        }
        if best < self.dist {
            self.dist = best;
            self.pending_announce = true;
        }
        // Announce an improvement (Algorithm 1, line 5).
        if self.pending_announce {
            self.pending_announce = false;
            ctx.broadcast(DistanceAnnouncement {
                distance: self.dist,
            });
        }
    }

    fn is_done(&self) -> bool {
        !self.pending_announce
    }
}

/// Message of the k-source variant: `(source id, distance)` — two words, an
/// id and a distance, as in the paper's `⟨v, d⟩` messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourcedAnnouncement {
    /// Which source this announcement refers to.
    pub source: NodeId,
    /// Announced distance from the sender to that source.
    pub distance: Distance,
}

impl MessageSize for SourcedAnnouncement {
    fn words(&self) -> usize {
        2
    }
}

/// k-Source Shortest Paths: every node learns its distance to each source.
///
/// Outgoing announcements are queued per source and served round-robin, one
/// per round, so the program sends at most one message per edge per round.
#[derive(Debug, Clone)]
pub struct KSourceBellmanFord {
    me: NodeId,
    is_source: bool,
    /// Best known distance per source.
    dist: BTreeMap<NodeId, Distance>,
    /// Sources with an un-sent improved distance, in FIFO order.
    queue: std::collections::VecDeque<NodeId>,
    /// Membership flags for `queue` to keep it duplicate-free.
    queued: std::collections::BTreeSet<NodeId>,
}

impl KSourceBellmanFord {
    /// Create the program for node `me`; `is_source` marks membership in the
    /// source set.
    pub fn new(me: NodeId, is_source: bool) -> Self {
        let mut dist = BTreeMap::new();
        if is_source {
            dist.insert(me, 0);
        }
        KSourceBellmanFord {
            me,
            is_source,
            dist,
            queue: std::collections::VecDeque::new(),
            queued: std::collections::BTreeSet::new(),
        }
    }

    /// The node this program runs on.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// Distance to `source` discovered so far.
    pub fn distance_to(&self, source: NodeId) -> Distance {
        self.dist.get(&source).copied().unwrap_or(INFINITY)
    }

    /// All `(source, distance)` pairs discovered so far.
    pub fn distances(&self) -> &BTreeMap<NodeId, Distance> {
        &self.dist
    }

    fn enqueue(&mut self, source: NodeId) {
        if self.queued.insert(source) {
            self.queue.push_back(source);
        }
    }
}

impl NodeProgram for KSourceBellmanFord {
    type Message = SourcedAnnouncement;

    fn on_start(&mut self, ctx: &mut NodeContext<'_, Self::Message>) {
        if self.is_source {
            ctx.broadcast(SourcedAnnouncement {
                source: self.me,
                distance: 0,
            });
        }
    }

    fn on_round(&mut self, ctx: &mut NodeContext<'_, Self::Message>) {
        // Relax incoming announcements; queue improved sources.
        let updates: Vec<(NodeId, Distance)> = ctx
            .incoming()
            .iter()
            .map(|inc| {
                (
                    inc.message.source,
                    add_dist(inc.message.distance, inc.edge_weight),
                )
            })
            .collect();
        for (source, candidate) in updates {
            let entry = self.dist.entry(source).or_insert(INFINITY);
            if candidate < *entry {
                *entry = candidate;
                self.enqueue(source);
            }
        }
        // Serve one queued source per round (round-robin over non-empty
        // queues, exactly one outgoing message per edge per round).
        if let Some(source) = self.queue.pop_front() {
            self.queued.remove(&source);
            let distance = self.distance_to(source);
            ctx.broadcast(SourcedAnnouncement { source, distance });
        }
    }

    fn is_done(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CongestConfig, Network};
    use netgraph::generators::{erdos_renyi, ring, GeneratorConfig};
    use netgraph::shortest_path::multi_source_dijkstra;
    use netgraph::GraphBuilder;

    fn weighted_path(n: usize) -> netgraph::Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge_idx(i, i + 1, (i + 1) as u64);
        }
        b.build()
    }

    #[test]
    fn single_source_matches_dijkstra_on_path() {
        let g = weighted_path(8);
        let mut net = Network::new(&g, CongestConfig::strict(), |u| {
            BellmanFordProgram::new(u, u == NodeId(0))
        });
        let outcome = net.run_until_quiescent(10_000);
        assert!(outcome.completed);
        let exact = multi_source_dijkstra(&g, &[NodeId(0)]);
        for (i, p) in net.programs().iter().enumerate() {
            assert_eq!(p.distance(), exact.dist[i], "node {i}");
        }
    }

    #[test]
    fn super_source_matches_multi_source_dijkstra() {
        let g = erdos_renyi(80, 0.08, GeneratorConfig::uniform(5, 1, 20));
        let sources = [NodeId(0), NodeId(17), NodeId(42)];
        let mut net = Network::new(&g, CongestConfig::strict(), |u| {
            BellmanFordProgram::new(u, sources.contains(&u))
        });
        let outcome = net.run_until_quiescent(100_000);
        assert!(outcome.completed);
        let exact = multi_source_dijkstra(&g, &sources);
        for (i, p) in net.programs().iter().enumerate() {
            assert_eq!(p.distance(), exact.dist[i], "node {i}");
        }
    }

    #[test]
    fn bellman_ford_rounds_bounded_by_sp_diameter_plus_constant() {
        let g = ring(60, GeneratorConfig::unit(1));
        let mut net = Network::new(&g, CongestConfig::strict(), |u| {
            BellmanFordProgram::new(u, u == NodeId(0))
        });
        let outcome = net.run_until_quiescent(10_000);
        assert!(outcome.completed);
        let s = netgraph::diameter::shortest_path_diameter(&g);
        // Algorithm 1 converges within S rounds; allow +2 slack for the
        // final silent round and the start pseudo-round.
        assert!(
            outcome.stats.rounds <= (s as u64) + 2,
            "rounds {} vs S {}",
            outcome.stats.rounds,
            s
        );
    }

    #[test]
    fn k_source_matches_per_source_dijkstra() {
        let g = erdos_renyi(60, 0.1, GeneratorConfig::uniform(9, 1, 15));
        let sources = [NodeId(3), NodeId(20), NodeId(45), NodeId(59)];
        let mut net = Network::new(&g, CongestConfig::strict(), |u| {
            KSourceBellmanFord::new(u, sources.contains(&u))
        });
        let outcome = net.run_until_quiescent(1_000_000);
        assert!(outcome.completed);
        for &s in &sources {
            let exact = multi_source_dijkstra(&g, &[s]);
            for (i, p) in net.programs().iter().enumerate() {
                assert_eq!(p.distance_to(s), exact.dist[i], "node {i}, source {s}");
            }
        }
    }

    #[test]
    fn k_source_respects_strict_bandwidth() {
        // Strict config panics on violation, so completing proves the
        // round-robin queueing keeps within one message per edge per round.
        let g = ring(30, GeneratorConfig::unit(4));
        let sources: Vec<NodeId> = (0..10).map(|i| NodeId(i * 3)).collect();
        let mut net = Network::new(&g, CongestConfig::strict(), |u| {
            KSourceBellmanFord::new(u, sources.contains(&u))
        });
        let outcome = net.run_until_quiescent(1_000_000);
        assert!(outcome.completed);
        assert_eq!(outcome.stats.bandwidth_violations, 0);
    }

    #[test]
    fn k_source_distances_accessor() {
        let g = weighted_path(4);
        let mut net = Network::new(&g, CongestConfig::strict(), |u| {
            KSourceBellmanFord::new(u, u == NodeId(0) || u == NodeId(3))
        });
        net.run_until_quiescent(10_000);
        let p = net.program(NodeId(1));
        assert_eq!(p.distances().len(), 2);
        assert_eq!(p.distance_to(NodeId(0)), 1);
        assert_eq!(p.distance_to(NodeId(3)), 5);
        assert_eq!(p.distance_to(NodeId(2)), INFINITY); // not a source
        assert_eq!(p.node(), NodeId(1));
    }

    #[test]
    fn no_sources_means_everything_stays_infinite() {
        let g = weighted_path(5);
        let mut net = Network::new(&g, CongestConfig::strict(), |u| {
            BellmanFordProgram::new(u, false)
        });
        let outcome = net.run_until_quiescent(100);
        assert!(outcome.completed);
        assert_eq!(outcome.stats.messages, 0);
        for p in net.programs() {
            assert_eq!(p.distance(), INFINITY);
        }
    }
}
