//! Tree convergecast and broadcast.
//!
//! Given a spanning tree (as produced by [`crate::programs::bfs_tree`]), a
//! convergecast aggregates one value per node up to the root, and a broadcast
//! pushes the aggregate back down so every node learns it.  The paper uses
//! this pattern twice: COMPLETE messages flowing up the BFS tree and START
//! messages flowing back down to begin the next phase (Section 3.3).  The
//! standalone program here is also used by the examples (e.g. to compute the
//! total number of overlay members or the maximum load).

use crate::message::MessageSize;
use crate::node::{NodeContext, NodeProgram};
use crate::programs::bfs_tree::TreeInfo;
use netgraph::NodeId;
use std::collections::BTreeSet;

/// The aggregation operator applied along the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateOp {
    /// Sum of all values.
    Sum,
    /// Maximum of all values.
    Max,
    /// Minimum of all values.
    Min,
}

impl AggregateOp {
    fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            AggregateOp::Sum => a.saturating_add(b),
            AggregateOp::Max => a.max(b),
            AggregateOp::Min => a.min(b),
        }
    }
}

/// Messages of the convergecast / downcast protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregationMessage {
    /// Partial aggregate of the sender's subtree, flowing upward.
    Up(u64),
    /// Final aggregate, flowing downward from the root.
    Down(u64),
}

impl MessageSize for AggregationMessage {
    fn words(&self) -> usize {
        1
    }
}

/// Result extracted from a finished [`ConvergecastProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvergecastResult {
    /// The aggregate over all nodes, as learned by this node.
    pub aggregate: u64,
}

/// Convergecast + broadcast over a precomputed spanning tree.
#[derive(Debug, Clone)]
pub struct ConvergecastProgram {
    #[allow(dead_code)]
    me: NodeId,
    tree: TreeInfo,
    op: AggregateOp,
    partial: u64,
    waiting_children: BTreeSet<NodeId>,
    sent_up: bool,
    result: Option<u64>,
    pending_down: bool,
}

impl ConvergecastProgram {
    /// Create the program for node `me` with its local `value`, its view of
    /// the spanning `tree`, and the aggregation operator `op`.
    pub fn new(me: NodeId, tree: TreeInfo, value: u64, op: AggregateOp) -> Self {
        let waiting_children: BTreeSet<NodeId> = tree.children.iter().copied().collect();
        ConvergecastProgram {
            me,
            tree,
            op,
            partial: value,
            waiting_children,
            sent_up: false,
            result: None,
            pending_down: false,
        }
    }

    /// The final aggregate, if this node has learned it yet.
    pub fn result(&self) -> Option<ConvergecastResult> {
        self.result
            .map(|aggregate| ConvergecastResult { aggregate })
    }

    fn try_finish_up(&mut self, ctx: &mut NodeContext<'_, AggregationMessage>) {
        if !self.waiting_children.is_empty() || self.sent_up {
            return;
        }
        self.sent_up = true;
        match self.tree.parent {
            Some(parent) => ctx.send(parent, AggregationMessage::Up(self.partial)),
            None => {
                // Root: the partial is the global aggregate.
                self.result = Some(self.partial);
                self.pending_down = true;
            }
        }
    }
}

impl NodeProgram for ConvergecastProgram {
    type Message = AggregationMessage;

    fn on_start(&mut self, ctx: &mut NodeContext<'_, Self::Message>) {
        // Leaves can send immediately.
        self.try_finish_up(ctx);
    }

    fn on_round(&mut self, ctx: &mut NodeContext<'_, Self::Message>) {
        let incoming: Vec<(NodeId, AggregationMessage)> = ctx
            .incoming()
            .iter()
            .map(|inc| (inc.from, inc.message))
            .collect();
        for (from, msg) in incoming {
            match msg {
                AggregationMessage::Up(v) => {
                    self.partial = self.op.combine(self.partial, v);
                    self.waiting_children.remove(&from);
                }
                AggregationMessage::Down(v) => {
                    if self.result.is_none() {
                        self.result = Some(v);
                        self.pending_down = true;
                    }
                }
            }
        }
        self.try_finish_up(ctx);
        if self.pending_down {
            self.pending_down = false;
            if let Some(v) = self.result {
                for &c in &self.tree.children {
                    ctx.send(c, AggregationMessage::Down(v));
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        !self.pending_down
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CongestConfig, Network};
    use crate::programs::bfs_tree::build_bfs_tree;
    use netgraph::generators::{erdos_renyi, grid, GeneratorConfig};

    fn run_aggregate(
        graph: &netgraph::Graph,
        values: &[u64],
        op: AggregateOp,
    ) -> (Vec<Option<u64>>, crate::stats::RunStats) {
        let (trees, _) = build_bfs_tree(graph, CongestConfig::default());
        let mut net = Network::new(graph, CongestConfig::default(), |u| {
            ConvergecastProgram::new(u, trees[u.index()].clone(), values[u.index()], op)
        });
        let outcome = net.run_until_quiescent(u64::MAX);
        assert!(outcome.completed);
        (
            net.programs()
                .iter()
                .map(|p| p.result().map(|r| r.aggregate))
                .collect(),
            outcome.stats,
        )
    }

    #[test]
    fn sum_over_grid() {
        let g = grid(5, 5, GeneratorConfig::unit(1));
        let values: Vec<u64> = (0..25).collect();
        let (results, _) = run_aggregate(&g, &values, AggregateOp::Sum);
        let expected: u64 = (0..25).sum();
        for (i, r) in results.iter().enumerate() {
            assert_eq!(*r, Some(expected), "node {i}");
        }
    }

    #[test]
    fn max_and_min_over_random_graph() {
        let g = erdos_renyi(70, 0.08, GeneratorConfig::unit(2));
        let values: Vec<u64> = (0..70).map(|i| (i * 37 + 11) % 1000).collect();
        let (max_results, _) = run_aggregate(&g, &values, AggregateOp::Max);
        let (min_results, _) = run_aggregate(&g, &values, AggregateOp::Min);
        let expected_max = *values.iter().max().unwrap();
        let expected_min = *values.iter().min().unwrap();
        assert!(max_results.iter().all(|r| *r == Some(expected_max)));
        assert!(min_results.iter().all(|r| *r == Some(expected_min)));
    }

    #[test]
    fn counting_nodes_with_sum_of_ones() {
        let g = erdos_renyi(40, 0.15, GeneratorConfig::unit(9));
        let values = vec![1u64; 40];
        let (results, _) = run_aggregate(&g, &values, AggregateOp::Sum);
        assert!(results.iter().all(|r| *r == Some(40)));
    }

    #[test]
    fn message_count_is_linear_in_n() {
        let g = grid(6, 6, GeneratorConfig::unit(1));
        let values = vec![1u64; 36];
        let (_, stats) = run_aggregate(&g, &values, AggregateOp::Sum);
        // One Up per non-root node plus one Down per non-root node.
        assert_eq!(stats.messages, 2 * (36 - 1));
    }

    #[test]
    fn single_node_aggregation() {
        let g = netgraph::GraphBuilder::new(1).build();
        let values = vec![17u64];
        let (results, stats) = run_aggregate(&g, &values, AggregateOp::Sum);
        assert_eq!(results[0], Some(17));
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn aggregate_op_combinators() {
        assert_eq!(AggregateOp::Sum.combine(2, 3), 5);
        assert_eq!(AggregateOp::Max.combine(2, 3), 3);
        assert_eq!(AggregateOp::Min.combine(2, 3), 2);
        assert_eq!(AggregateOp::Sum.combine(u64::MAX, 1), u64::MAX);
    }
}
