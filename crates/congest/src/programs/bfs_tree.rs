//! Leader election and BFS-tree construction.
//!
//! Section 3.3 of the paper assumes that "at the very beginning of the
//! algorithm ... we run a leader election algorithm to designate some
//! arbitrary vertex r as the leader, and then build a breadth-first search
//! (BFS) tree T out of r so that every node knows its parent in the tree as
//! well as its children", citing [KKM+08] for an `O(D)`-round,
//! `O(|E| log n)`-message construction.
//!
//! [`BfsTreeProgram`] implements the classic flooding variant of that
//! construction: every node initially champions itself as the root; the node
//! with the smallest id wins.  Whenever a node learns of a smaller root (or a
//! shorter hop distance to the current root) it adopts the sender as its
//! parent, notifies the old and new parents so that children sets stay
//! consistent, and re-floods.  The protocol stabilizes in `O(D)` rounds.

use crate::message::MessageSize;
use crate::node::{NodeContext, NodeProgram};
use netgraph::NodeId;
use std::collections::BTreeSet;

/// Messages exchanged while electing the leader and building the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeMessage {
    /// "My current root is `root` and I am `hops` hops from it."
    Announce {
        /// Champion root id.
        root: NodeId,
        /// Sender's hop distance from that root.
        hops: u64,
    },
    /// "You are now my parent (for root `root`)."
    Claim {
        /// Champion root the claim refers to.
        root: NodeId,
    },
    /// "You are no longer my parent."
    Abandon,
}

impl MessageSize for TreeMessage {
    fn words(&self) -> usize {
        match self {
            TreeMessage::Announce { .. } => 2,
            TreeMessage::Claim { .. } => 1,
            TreeMessage::Abandon => 1,
        }
    }
}

/// The local view of the finished BFS tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeInfo {
    /// The elected leader (root of the tree).
    pub root: NodeId,
    /// Parent of this node in the tree (`None` at the root).
    pub parent: Option<NodeId>,
    /// Children of this node in the tree, sorted by id.
    pub children: Vec<NodeId>,
    /// Hop depth of this node below the root.
    pub depth: u64,
}

/// Leader election + BFS-tree construction program.
#[derive(Debug, Clone)]
pub struct BfsTreeProgram {
    me: NodeId,
    best_root: NodeId,
    best_hops: u64,
    parent: Option<NodeId>,
    children: BTreeSet<NodeId>,
    pending_announce: bool,
    pending_claim: Option<NodeId>,
    pending_abandons: BTreeSet<NodeId>,
}

impl BfsTreeProgram {
    /// Create the program for node `me`.
    pub fn new(me: NodeId) -> Self {
        BfsTreeProgram {
            me,
            best_root: me,
            best_hops: 0,
            parent: None,
            children: BTreeSet::new(),
            pending_announce: false,
            pending_claim: None,
            pending_abandons: BTreeSet::new(),
        }
    }

    /// Extract the tree view once the run has quiesced.
    pub fn tree_info(&self) -> TreeInfo {
        TreeInfo {
            root: self.best_root,
            parent: self.parent,
            children: self.children.iter().copied().collect(),
            depth: self.best_hops,
        }
    }

    /// The node this program runs on.
    pub fn node(&self) -> NodeId {
        self.me
    }

    fn consider(&mut self, root: NodeId, hops_via_sender: u64, sender: NodeId) {
        let better =
            root < self.best_root || (root == self.best_root && hops_via_sender < self.best_hops);
        if better {
            self.best_root = root;
            self.best_hops = hops_via_sender;
            if self.parent != Some(sender) {
                // Defer the notifications so they go out with this round's
                // sends (and so the *latest* parent choice within the round
                // wins if several better announcements arrive together).
                if let Some(old) = self.parent {
                    self.pending_abandons.insert(old);
                }
                self.parent = Some(sender);
            }
            // Always (re-)claim: an earlier claim may have been rejected by a
            // parent that had already adopted a smaller root, so the claim is
            // repeated whenever our root value catches up.
            self.pending_claim = Some(sender);
            self.pending_announce = true;
        }
    }
}

impl NodeProgram for BfsTreeProgram {
    type Message = TreeMessage;

    fn on_start(&mut self, ctx: &mut NodeContext<'_, Self::Message>) {
        ctx.broadcast(TreeMessage::Announce {
            root: self.me,
            hops: 0,
        });
    }

    fn on_round(&mut self, ctx: &mut NodeContext<'_, Self::Message>) {
        let incoming: Vec<(NodeId, TreeMessage)> = ctx
            .incoming()
            .iter()
            .map(|inc| (inc.from, inc.message))
            .collect();
        for (from, msg) in incoming {
            match msg {
                TreeMessage::Announce { root, hops } => {
                    self.consider(root, hops + 1, from);
                }
                TreeMessage::Claim { root } => {
                    // Only accept children that agree on the final root; a
                    // stale claim for a worse root will be followed by an
                    // Abandon or superseded claim from the same child.
                    if root == self.best_root {
                        self.children.insert(from);
                    } else {
                        self.children.remove(&from);
                    }
                }
                TreeMessage::Abandon => {
                    self.children.remove(&from);
                }
            }
        }

        // Never abandon the node we are about to (re-)claim.
        if let Some(current) = self.parent {
            self.pending_abandons.remove(&current);
        }
        let abandons: Vec<NodeId> = self.pending_abandons.iter().copied().collect();
        self.pending_abandons.clear();
        for old in abandons {
            ctx.send(old, TreeMessage::Abandon);
        }
        if let Some(new) = self.pending_claim.take() {
            ctx.send(
                new,
                TreeMessage::Claim {
                    root: self.best_root,
                },
            );
        }
        if self.pending_announce {
            self.pending_announce = false;
            ctx.broadcast(TreeMessage::Announce {
                root: self.best_root,
                hops: self.best_hops,
            });
        }
    }

    fn is_done(&self) -> bool {
        !self.pending_announce && self.pending_claim.is_none() && self.pending_abandons.is_empty()
    }
}

/// Convenience: run the BFS-tree construction on `graph` and return the
/// per-node [`TreeInfo`] along with the run statistics.
pub fn build_bfs_tree(
    graph: &netgraph::Graph,
    config: crate::engine::CongestConfig,
) -> (Vec<TreeInfo>, crate::stats::RunStats) {
    let mut net = crate::engine::Network::new(graph, config, BfsTreeProgram::new);
    let outcome = net.run_until_quiescent(u64::MAX);
    debug_assert!(outcome.completed);
    let infos = net.programs().iter().map(|p| p.tree_info()).collect();
    (infos, outcome.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::CongestConfig;
    use netgraph::generators::{erdos_renyi, grid, ring, GeneratorConfig};
    use netgraph::shortest_path::bfs_hops;
    use netgraph::NodeId;

    fn check_tree(graph: &netgraph::Graph, infos: &[TreeInfo]) {
        let n = graph.num_nodes();
        // Everyone agrees the leader is node 0 (smallest id) on a connected graph.
        for info in infos {
            assert_eq!(info.root, NodeId(0));
        }
        // Depths equal BFS hop distances from the root.
        let hops = bfs_hops(graph, NodeId(0));
        for (i, info) in infos.iter().enumerate() {
            assert_eq!(info.depth, hops[i] as u64, "node {i} depth");
        }
        // Parent/child relations are mutual and parents are one hop shallower.
        for (i, info) in infos.iter().enumerate() {
            match info.parent {
                None => assert_eq!(i, 0),
                Some(p) => {
                    assert!(graph.has_edge(NodeId::from_index(i), p));
                    assert_eq!(infos[p.index()].depth + 1, info.depth);
                    assert!(
                        infos[p.index()].children.contains(&NodeId::from_index(i)),
                        "parent {p} of node {i} does not list it as a child"
                    );
                }
            }
        }
        // Every claimed child claims us back as its parent.
        for (i, info) in infos.iter().enumerate() {
            for &c in &info.children {
                assert_eq!(infos[c.index()].parent, Some(NodeId::from_index(i)));
            }
        }
        // Tree has exactly n - 1 edges.
        let child_count: usize = infos.iter().map(|i| i.children.len()).sum();
        assert_eq!(child_count, n - 1);
    }

    #[test]
    fn builds_correct_tree_on_ring() {
        let g = ring(25, GeneratorConfig::unit(1));
        let (infos, stats) = build_bfs_tree(&g, CongestConfig::default());
        check_tree(&g, &infos);
        assert!(stats.rounds > 0);
    }

    #[test]
    fn builds_correct_tree_on_grid() {
        let g = grid(6, 7, GeneratorConfig::uniform(3, 1, 9));
        let (infos, _) = build_bfs_tree(&g, CongestConfig::default());
        check_tree(&g, &infos);
    }

    #[test]
    fn builds_correct_tree_on_random_graph() {
        let g = erdos_renyi(120, 0.06, GeneratorConfig::uniform(11, 1, 30));
        let (infos, _) = build_bfs_tree(&g, CongestConfig::default());
        check_tree(&g, &infos);
    }

    #[test]
    fn rounds_scale_with_hop_diameter() {
        let g = ring(80, GeneratorConfig::unit(1));
        let (_, stats) = build_bfs_tree(&g, CongestConfig::default());
        let d = netgraph::diameter::hop_diameter(&g) as u64;
        // The flood stabilizes within O(D) rounds; allow a small constant
        // factor for claim/abandon settling and the trailing silent round.
        assert!(
            stats.rounds <= 3 * d + 5,
            "rounds {} should be O(D), D = {d}",
            stats.rounds
        );
    }

    #[test]
    fn single_node_graph_elects_itself() {
        let g = netgraph::GraphBuilder::new(1).build();
        let (infos, stats) = build_bfs_tree(&g, CongestConfig::default());
        assert_eq!(infos[0].root, NodeId(0));
        assert_eq!(infos[0].parent, None);
        assert!(infos[0].children.is_empty());
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn tree_info_accessors() {
        let p = BfsTreeProgram::new(NodeId(5));
        assert_eq!(p.node(), NodeId(5));
        let info = p.tree_info();
        assert_eq!(info.root, NodeId(5));
        assert_eq!(info.depth, 0);
    }
}
