//! `congest-sim` — a synchronous CONGEST-model network simulator.
//!
//! The paper (Das Sarma, Dinitz, Pandurangan, SPAA 2012) analyses its
//! algorithms in the standard **CONGEST** model of distributed computation
//! (Section 2.2):
//!
//! * the network is a weighted, undirected, connected graph `G = (V, E)`;
//! * computation proceeds in synchronous rounds;
//! * in each round every node may send one message of `O(log n)` bits (one
//!   "word", or a small constant number of words such as an id plus a
//!   distance) across each incident edge;
//! * each node initially knows only its own id, its neighbors, and the
//!   weights of its incident edges.
//!
//! This crate provides a faithful, instrumented simulator of that model:
//!
//! * [`NodeProgram`] — the trait a per-node algorithm implements.
//! * [`Network`] — the engine: it owns one program instance per node, runs
//!   rounds until every program reports completion (or a round limit), and
//!   performs deterministic message delivery.  Node steps within a round are
//!   executed in parallel across threads (each node owns its state, so the
//!   round is embarrassingly parallel), yet the observable behaviour is
//!   identical to a sequential execution.
//! * [`RunStats`] — rounds, messages, and word counts: the exact quantities
//!   the paper's theorems bound.
//! * [`programs`] — reusable CONGEST building blocks used by the paper's
//!   constructions: distributed Bellman–Ford (Algorithm 1), leader election +
//!   BFS-tree construction, and tree broadcast/convergecast (used by the
//!   Section 3.3 termination-detection protocol).
//!
//! # Bandwidth accounting
//!
//! Messages are ordinary Rust values; the simulator does not serialize them
//! to bits.  Instead every message type reports its size in *words* via
//! [`MessageSize`], and the engine enforces the per-edge, per-round message
//! budget ([`CongestConfig::messages_per_edge_per_round`]).  A program that
//! tries to exceed the budget panics, so violations of the model cannot go
//! unnoticed, and the per-message word cost is accumulated in the statistics.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod engine;
pub mod message;
pub mod node;
pub mod programs;
pub mod stats;

pub use engine::{CongestConfig, Network, RunOutcome};
pub use message::MessageSize;
pub use node::{NodeContext, NodeProgram};
pub use stats::RunStats;

/// Re-export of the graph substrate the simulator runs on, so downstream
/// crates can name graph types without an extra dependency edge.
pub use netgraph;
