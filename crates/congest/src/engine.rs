//! The synchronous round engine.
//!
//! One [`Network`] owns one [`NodeProgram`] instance per graph node and
//! repeatedly executes rounds:
//!
//! 1. **Compute** — every node program is stepped with the messages that were
//!    delivered to it at the end of the previous round.  Node state is fully
//!    node-local, so this step is executed in parallel across a pool of
//!    scoped threads; the result is bit-identical to a sequential execution
//!    because programs cannot observe each other within a round.
//! 2. **Deliver** — queued messages are moved to their destination inboxes in
//!    deterministic (sender-id) order, adjacency is validated, the per-edge
//!    bandwidth budget is enforced, and statistics are updated.
//!
//! The run terminates when every program reports `is_done()` and no messages
//! are in flight (the simulator's global-termination oracle), or when the
//! configured round limit is hit.

use crate::message::MessageSize;
use crate::node::{Incoming, NodeContext, NodeProgram};
use crate::stats::RunStats;
use netgraph::{Graph, NodeId};

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct CongestConfig {
    /// Maximum number of messages a node may send over one edge in one round.
    ///
    /// The CONGEST model allows exactly one `O(log n)`-bit message per edge
    /// per round; the paper's constructions use a small constant number of
    /// logical messages per edge per round (e.g. one Bellman–Ford
    /// announcement plus one ECHO of the termination-detection layer, which
    /// the paper accounts for as "at most doubling" the message complexity).
    /// The default of 4 admits that constant while still catching runaway
    /// programs; set it to 1 to assert the strict model.
    pub messages_per_edge_per_round: usize,
    /// Number of worker threads for the compute step.  `0` means "use all
    /// available parallelism".
    pub num_threads: usize,
    /// If true (default), exceeding the bandwidth budget panics; if false the
    /// violation is only counted in [`RunStats::bandwidth_violations`].
    pub panic_on_bandwidth_violation: bool,
}

impl Default for CongestConfig {
    fn default() -> Self {
        CongestConfig {
            messages_per_edge_per_round: 4,
            num_threads: 0,
            panic_on_bandwidth_violation: true,
        }
    }
}

impl CongestConfig {
    /// Strict CONGEST: one message per edge per round, violations panic.
    pub fn strict() -> Self {
        CongestConfig {
            messages_per_edge_per_round: 1,
            ..Default::default()
        }
    }

    /// Sequential execution (useful for debugging nondeterminism suspicions).
    pub fn sequential() -> Self {
        CongestConfig {
            num_threads: 1,
            ..Default::default()
        }
    }

    fn resolved_threads(&self, n: usize) -> usize {
        let hw = if self.num_threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.num_threads
        };
        hw.clamp(1, n.max(1))
    }
}

/// Result of driving a network until termination or a round limit.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// True if every node finished and no messages were in flight.
    pub completed: bool,
    /// Accumulated statistics for the run.
    pub stats: RunStats,
}

/// A simulated CONGEST network executing one program per node.
pub struct Network<'g, P: NodeProgram> {
    graph: &'g Graph,
    config: CongestConfig,
    programs: Vec<P>,
    inboxes: Vec<Vec<Incoming<P::Message>>>,
    stats: RunStats,
    round: u64,
    started: bool,
}

impl<'g, P: NodeProgram> Network<'g, P> {
    /// Create a network over `graph`, instantiating one program per node via
    /// `factory` (called with each node's id in increasing order).
    pub fn new(
        graph: &'g Graph,
        config: CongestConfig,
        mut factory: impl FnMut(NodeId) -> P,
    ) -> Self {
        let n = graph.num_nodes();
        let programs = graph.nodes().map(&mut factory).collect();
        Network {
            graph,
            config,
            programs,
            inboxes: std::iter::repeat_with(Vec::new).take(n).collect(),
            stats: RunStats::default(),
            round: 0,
            started: false,
        }
    }

    /// The graph being simulated.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Immutable access to the node programs (for extracting results).
    pub fn programs(&self) -> &[P] {
        &self.programs
    }

    /// The program instance at `node`.
    pub fn program(&self, node: NodeId) -> &P {
        &self.programs[node.index()]
    }

    /// Consume the network and return the node programs.
    pub fn into_programs(self) -> Vec<P> {
        self.programs
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// True if all programs report done and no messages are in flight.
    pub fn is_quiescent(&self) -> bool {
        self.programs.iter().all(|p| p.is_done()) && self.inboxes.iter().all(|i| i.is_empty())
    }

    /// Execute rounds until quiescence or until `max_rounds` rounds have been
    /// executed in total, whichever comes first.
    pub fn run_until_quiescent(&mut self, max_rounds: u64) -> RunOutcome {
        self.ensure_started();
        while !self.is_quiescent() && self.round < max_rounds {
            self.step();
        }
        RunOutcome {
            completed: self.is_quiescent(),
            stats: self.stats.clone(),
        }
    }

    /// Execute exactly `rounds` additional rounds (or stop earlier at
    /// quiescence).
    pub fn run_rounds(&mut self, rounds: u64) -> RunOutcome {
        self.ensure_started();
        for _ in 0..rounds {
            if self.is_quiescent() {
                break;
            }
            self.step();
        }
        RunOutcome {
            completed: self.is_quiescent(),
            stats: self.stats.clone(),
        }
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        // `on_start` runs as a round-(-1) compute step with empty inboxes;
        // whatever it sends is delivered before round 0.
        let outboxes = self.compute_step(true);
        self.deliver(outboxes, false);
    }

    /// Execute one full round (compute + deliver) and update statistics.
    pub fn step(&mut self) {
        self.ensure_started();
        let outboxes = self.compute_step(false);
        self.deliver(outboxes, true);
        self.round += 1;
    }

    /// Run the compute half of a round, in parallel, returning per-node
    /// outboxes.  `starting` selects `on_start` vs `on_round`.
    fn compute_step(&mut self, starting: bool) -> Vec<Vec<(NodeId, P::Message)>> {
        let n = self.graph.num_nodes();
        if n == 0 {
            return Vec::new();
        }
        let threads = self.config.resolved_threads(n);
        let chunk = n.div_ceil(threads);
        let round = self.round;
        let graph = self.graph;

        let mut outboxes: Vec<Vec<(NodeId, P::Message)>> = Vec::with_capacity(n);
        outboxes.resize_with(n, Vec::new);

        if threads == 1 {
            for (i, program) in self.programs.iter_mut().enumerate() {
                let inbox = std::mem::take(&mut self.inboxes[i]);
                outboxes[i] = run_one(
                    program,
                    graph,
                    NodeId::from_index(i),
                    round,
                    inbox,
                    starting,
                );
            }
            return outboxes;
        }

        let programs = &mut self.programs;
        let inboxes = &mut self.inboxes;
        std::thread::scope(|scope| {
            let prog_chunks = programs.chunks_mut(chunk);
            let inbox_chunks = inboxes.chunks_mut(chunk);
            let out_chunks = outboxes.chunks_mut(chunk);
            for (chunk_idx, ((progs, inbs), outs)) in
                prog_chunks.zip(inbox_chunks).zip(out_chunks).enumerate()
            {
                let base = chunk_idx * chunk;
                scope.spawn(move || {
                    for (offset, ((program, inbox_slot), out_slot)) in progs
                        .iter_mut()
                        .zip(inbs.iter_mut())
                        .zip(outs.iter_mut())
                        .enumerate()
                    {
                        let node = NodeId::from_index(base + offset);
                        let inbox = std::mem::take(inbox_slot);
                        *out_slot = run_one(program, graph, node, round, inbox, starting);
                    }
                });
            }
        });
        outboxes
    }

    /// Deliver outboxes into inboxes, enforcing adjacency and bandwidth, and
    /// (if `count_round`) record one round of statistics.
    fn deliver(&mut self, outboxes: Vec<Vec<(NodeId, P::Message)>>, count_round: bool) {
        let mut messages: u64 = 0;
        let mut words: u64 = 0;
        let budget = self.config.messages_per_edge_per_round;

        for (u_idx, outbox) in outboxes.into_iter().enumerate() {
            let u = NodeId::from_index(u_idx);
            if outbox.is_empty() {
                continue;
            }
            // Per-destination counts for bandwidth enforcement.  Outboxes are
            // small (≤ degree × budget), so a sorted scan is cheap.
            let mut dest_counts: Vec<(NodeId, usize)> = Vec::new();
            for (to, message) in outbox {
                let edge_weight = match self.graph.edge_weight(u, to) {
                    Some(w) => w,
                    None => panic!("CONGEST violation: {u} attempted to send to non-neighbor {to}"),
                };
                let count = match dest_counts.iter_mut().find(|(d, _)| *d == to) {
                    Some((_, c)) => {
                        *c += 1;
                        *c
                    }
                    None => {
                        dest_counts.push((to, 1));
                        1
                    }
                };
                if count > budget {
                    self.stats.bandwidth_violations += 1;
                    if self.config.panic_on_bandwidth_violation {
                        panic!(
                            "CONGEST bandwidth violation: {u} sent {count} messages to {to} \
                             in one round (budget {budget})"
                        );
                    }
                }
                messages += 1;
                words += message.words() as u64;
                self.inboxes[to.index()].push(Incoming {
                    from: u,
                    edge_weight,
                    message,
                });
            }
        }

        if count_round {
            self.stats.record_round(messages, words);
        } else {
            // The on_start pseudo-round only contributes its messages/words.
            self.stats.messages += messages;
            self.stats.words += words;
            if messages > 0 {
                self.stats.max_messages_in_round = self.stats.max_messages_in_round.max(messages);
            }
        }
    }
}

/// Step a single program and return its outbox.
fn run_one<P: NodeProgram>(
    program: &mut P,
    graph: &Graph,
    node: NodeId,
    round: u64,
    inbox: Vec<Incoming<P::Message>>,
    starting: bool,
) -> Vec<(NodeId, P::Message)> {
    let mut ctx = NodeContext {
        node,
        round,
        graph,
        incoming: &inbox,
        outgoing: Vec::new(),
    };
    if starting {
        program.on_start(&mut ctx);
    } else {
        program.on_round(&mut ctx);
    }
    ctx.outgoing
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::generators::{ring, GeneratorConfig};
    use netgraph::GraphBuilder;

    /// Flooding program: the root broadcasts a token once; every node
    /// re-broadcasts the first time it hears it.  Classic BFS-style flood.
    struct Flood {
        me: NodeId,
        root: NodeId,
        heard_at_round: Option<u64>,
        pending_broadcast: bool,
    }

    impl Flood {
        fn new(me: NodeId, root: NodeId) -> Self {
            Flood {
                me,
                root,
                heard_at_round: None,
                pending_broadcast: false,
            }
        }
    }

    impl NodeProgram for Flood {
        type Message = u64;

        fn on_start(&mut self, ctx: &mut NodeContext<'_, u64>) {
            if self.me == self.root {
                self.heard_at_round = Some(0);
                ctx.broadcast(0);
            }
        }

        fn on_round(&mut self, ctx: &mut NodeContext<'_, u64>) {
            if self.pending_broadcast {
                self.pending_broadcast = false;
                ctx.broadcast(self.heard_at_round.unwrap());
            }
            if self.heard_at_round.is_none() && !ctx.incoming().is_empty() {
                self.heard_at_round = Some(ctx.round() + 1);
                ctx.broadcast(ctx.round() + 1);
            }
        }

        fn is_done(&self) -> bool {
            !self.pending_broadcast
        }
    }

    fn path(n: usize) -> netgraph::Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge_idx(i, i + 1, 1);
        }
        b.build()
    }

    #[test]
    fn flood_reaches_all_nodes_in_hop_distance_rounds() {
        let g = path(6);
        let mut net = Network::new(&g, CongestConfig::default(), |u| Flood::new(u, NodeId(0)));
        let outcome = net.run_until_quiescent(100);
        assert!(outcome.completed);
        for (i, p) in net.programs().iter().enumerate() {
            assert_eq!(p.heard_at_round, Some(i as u64), "node {i}");
        }
    }

    #[test]
    fn flood_message_count_is_bounded_by_two_per_edge() {
        let g = ring(20, GeneratorConfig::unit(1));
        let mut net = Network::new(&g, CongestConfig::default(), |u| Flood::new(u, NodeId(0)));
        let outcome = net.run_until_quiescent(100);
        assert!(outcome.completed);
        // Each node broadcasts exactly once => 2|E| directed messages total.
        assert_eq!(outcome.stats.messages, 2 * g.num_edges() as u64);
        assert!(outcome.stats.words >= outcome.stats.messages);
    }

    #[test]
    fn sequential_and_parallel_execution_agree() {
        let g = ring(31, GeneratorConfig::unit(2));
        let mut seq = Network::new(&g, CongestConfig::sequential(), |u| {
            Flood::new(u, NodeId(3))
        });
        let mut par = Network::new(
            &g,
            CongestConfig {
                num_threads: 4,
                ..Default::default()
            },
            |u| Flood::new(u, NodeId(3)),
        );
        let so = seq.run_until_quiescent(200);
        let po = par.run_until_quiescent(200);
        assert_eq!(so.stats, po.stats);
        for (a, b) in seq.programs().iter().zip(par.programs().iter()) {
            assert_eq!(a.heard_at_round, b.heard_at_round);
        }
    }

    #[test]
    fn round_limit_stops_early() {
        let g = path(50);
        let mut net = Network::new(&g, CongestConfig::default(), |u| Flood::new(u, NodeId(0)));
        let outcome = net.run_until_quiescent(3);
        assert!(!outcome.completed);
        assert_eq!(net.round(), 3);
        // Continue to completion.
        let outcome = net.run_until_quiescent(1_000);
        assert!(outcome.completed);
    }

    #[test]
    fn run_rounds_executes_fixed_number() {
        let g = path(10);
        let mut net = Network::new(&g, CongestConfig::default(), |u| Flood::new(u, NodeId(0)));
        net.run_rounds(2);
        assert_eq!(net.round(), 2);
    }

    /// Program that (illegally) sends to a non-neighbor.
    struct BadSender {
        me: NodeId,
    }
    impl NodeProgram for BadSender {
        type Message = u64;
        fn on_start(&mut self, ctx: &mut NodeContext<'_, u64>) {
            if self.me == NodeId(0) {
                // node 2 is not adjacent to node 0 in a path of length 3+
                ctx.send(NodeId(2), 1);
            }
        }
        fn on_round(&mut self, _ctx: &mut NodeContext<'_, u64>) {}
        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn sending_to_non_neighbor_panics() {
        let g = path(4);
        let mut net = Network::new(&g, CongestConfig::sequential(), |u| BadSender { me: u });
        net.run_until_quiescent(5);
    }

    /// Program that floods too many messages over one edge in one round.
    struct Chatty {
        me: NodeId,
    }
    impl NodeProgram for Chatty {
        type Message = u64;
        fn on_start(&mut self, ctx: &mut NodeContext<'_, u64>) {
            if self.me == NodeId(0) {
                for i in 0..10 {
                    ctx.send(NodeId(1), i);
                }
            }
        }
        fn on_round(&mut self, _ctx: &mut NodeContext<'_, u64>) {}
        fn is_done(&self) -> bool {
            true
        }
    }

    #[test]
    #[should_panic(expected = "bandwidth violation")]
    fn exceeding_bandwidth_panics_by_default() {
        let g = path(3);
        let mut net = Network::new(&g, CongestConfig::sequential(), |u| Chatty { me: u });
        net.run_until_quiescent(5);
    }

    #[test]
    fn bandwidth_violations_can_be_counted_instead() {
        let g = path(3);
        let config = CongestConfig {
            panic_on_bandwidth_violation: false,
            messages_per_edge_per_round: 1,
            num_threads: 1,
        };
        let mut net = Network::new(&g, config, |u| Chatty { me: u });
        let outcome = net.run_until_quiescent(5);
        assert!(outcome.stats.bandwidth_violations > 0);
    }

    #[test]
    fn empty_graph_runs_trivially() {
        let g = GraphBuilder::new(0).build();
        let mut net = Network::new(&g, CongestConfig::default(), |u| Flood::new(u, NodeId(0)));
        let outcome = net.run_until_quiescent(10);
        assert!(outcome.completed);
        assert_eq!(outcome.stats.messages, 0);
    }

    #[test]
    fn program_accessors() {
        let g = path(3);
        let mut net = Network::new(&g, CongestConfig::default(), |u| Flood::new(u, NodeId(0)));
        net.run_until_quiescent(10);
        assert_eq!(net.graph().num_nodes(), 3);
        assert_eq!(net.programs().len(), 3);
        assert_eq!(net.program(NodeId(1)).heard_at_round, Some(1));
        let programs = net.into_programs();
        assert_eq!(programs.len(), 3);
    }
}
