//! The per-node program abstraction and the context handed to it each round.

use crate::message::MessageSize;
use netgraph::{Graph, NodeId, Weight};

/// A distributed algorithm, as seen from one node.
///
/// The engine creates one program instance per node (via the factory passed
/// to [`crate::Network::new`]), calls [`NodeProgram::on_start`] once before
/// the first round, and then calls [`NodeProgram::on_round`] every round with
/// the messages that arrived at the end of the previous round.  The run ends
/// when every program reports [`NodeProgram::is_done`] *and* no messages are
/// in flight, or when the round limit is reached.
///
/// Programs must only communicate through the context's `send` methods —
/// exactly the locality constraint of the CONGEST model.  Each program owns
/// its local state, which is what makes the engine's parallel execution of a
/// round safe.
pub trait NodeProgram: Send {
    /// The message type exchanged by this algorithm.
    type Message: Clone + Send + MessageSize;

    /// Called once before round 0.  Typically used by source/root nodes to
    /// seed their first announcements.
    fn on_start(&mut self, ctx: &mut NodeContext<'_, Self::Message>);

    /// Called every round with the messages delivered at the end of the
    /// previous round (available via [`NodeContext::incoming`]).
    fn on_round(&mut self, ctx: &mut NodeContext<'_, Self::Message>);

    /// A node is *done* when it will not send any further messages unless it
    /// receives one.  The engine stops when all nodes are done and no message
    /// is in flight; this is the simulator's global-termination oracle.
    /// (The *distributed* termination detection of Section 3.3 is implemented
    /// separately, inside the sketch programs, and can be compared against
    /// this oracle.)
    fn is_done(&self) -> bool;
}

/// One received message, tagged with the neighbor that sent it.
#[derive(Debug, Clone)]
pub struct Incoming<M> {
    /// The neighbor the message arrived from.
    pub from: NodeId,
    /// The weight of the edge it arrived over (known locally in the model).
    pub edge_weight: Weight,
    /// The payload.
    pub message: M,
}

/// Everything a node may legally observe and do during one round.
pub struct NodeContext<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) round: u64,
    pub(crate) graph: &'a Graph,
    pub(crate) incoming: &'a [Incoming<M>],
    pub(crate) outgoing: Vec<(NodeId, M)>,
}

impl<'a, M: Clone> NodeContext<'a, M> {
    /// This node's identity.
    pub fn me(&self) -> NodeId {
        self.node
    }

    /// The current round number (0 for the first round after `on_start`).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Total number of nodes `n` in the network.
    ///
    /// The paper assumes `n` (or a constant-factor estimate) is common
    /// knowledge (Section 2.2), so exposing it locally is within the model.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Degree of this node.
    pub fn degree(&self) -> usize {
        self.graph.degree(self.node)
    }

    /// Iterator over `(neighbor, edge weight)` pairs — the node's initial
    /// local knowledge.
    pub fn neighbors(&self) -> impl Iterator<Item = (NodeId, Weight)> + '_ {
        self.graph.neighbors(self.node).map(|e| (e.to, e.weight))
    }

    /// Weight of the edge to `neighbor`, if it exists.
    pub fn edge_weight_to(&self, neighbor: NodeId) -> Option<Weight> {
        self.graph.edge_weight(self.node, neighbor)
    }

    /// Messages delivered to this node at the end of the previous round.
    pub fn incoming(&self) -> &[Incoming<M>] {
        self.incoming
    }

    /// Send `message` to `neighbor` (must be adjacent; checked by the
    /// engine during delivery).
    pub fn send(&mut self, neighbor: NodeId, message: M) {
        self.outgoing.push((neighbor, message));
    }

    /// Send `message` to every neighbor.
    pub fn broadcast(&mut self, message: M) {
        let neighbors: Vec<NodeId> = self.graph.neighbors(self.node).map(|e| e.to).collect();
        for v in neighbors {
            self.outgoing.push((v, message.clone()));
        }
    }

    /// Number of messages queued for sending this round so far.
    pub fn queued(&self) -> usize {
        self.outgoing.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::GraphBuilder;

    fn path3() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge_idx(0, 1, 4);
        b.add_edge_idx(1, 2, 6);
        b.build()
    }

    #[test]
    fn context_exposes_local_view() {
        let g = path3();
        let incoming = vec![Incoming {
            from: NodeId(0),
            edge_weight: 4,
            message: 10u64,
        }];
        let mut ctx = NodeContext {
            node: NodeId(1),
            round: 3,
            graph: &g,
            incoming: &incoming,
            outgoing: Vec::new(),
        };
        assert_eq!(ctx.me(), NodeId(1));
        assert_eq!(ctx.round(), 3);
        assert_eq!(ctx.num_nodes(), 3);
        assert_eq!(ctx.degree(), 2);
        assert_eq!(ctx.edge_weight_to(NodeId(0)), Some(4));
        assert_eq!(ctx.edge_weight_to(NodeId(2)), Some(6));
        assert_eq!(ctx.incoming().len(), 1);
        assert_eq!(ctx.incoming()[0].message, 10);

        ctx.send(NodeId(0), 1u64);
        ctx.broadcast(2u64);
        assert_eq!(ctx.queued(), 3);
        assert_eq!(ctx.outgoing[0], (NodeId(0), 1));
        // broadcast goes to both neighbors, in sorted adjacency order
        assert_eq!(ctx.outgoing[1], (NodeId(0), 2));
        assert_eq!(ctx.outgoing[2], (NodeId(2), 2));
    }

    #[test]
    fn neighbors_iterator_matches_graph() {
        let g = path3();
        let ctx = NodeContext::<u64> {
            node: NodeId(0),
            round: 0,
            graph: &g,
            incoming: &[],
            outgoing: Vec::new(),
        };
        let nbrs: Vec<_> = ctx.neighbors().collect();
        assert_eq!(nbrs, vec![(NodeId(1), 4)]);
    }
}
