//! Monitoring-overlay scenario: a small set of monitoring servers must be
//! assigned to clients so that each client reports to a nearby server, and
//! operators want cheap estimates of client-to-client latency — served at
//! dashboard refresh rates, not one lookup at a time.
//!
//! This is the Theorem 4.3 use case wired to the serving layer: an
//! ε-density net is exactly a provably-good monitor placement (every client
//! has a monitor within its ε-ball), the slack sketches — each client's
//! distances to all monitors — answer client-pair latency queries within a
//! factor 3 for all but the nearest pairs, and a sharded `SketchServer`
//! answers the operators' query traffic concurrently with per-shard result
//! caches.
//!
//! ```text
//! cargo run --release --bin monitoring_overlay -- --nodes 300 --eps 0.1 --shards 4
//! ```

use dsketch::prelude::*;
use dsketch_examples::{arg_parse, print_table};
use dsketch_serve::{ServeConfig, SketchServer};
use netgraph::apsp::DistanceTable;
use netgraph::generators::{random_geometric, GeneratorConfig};
use netgraph::NodeId;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_parse(&args, "nodes", 400);
    let eps: f64 = arg_parse(&args, "eps", 0.25);
    let seed: u64 = arg_parse(&args, "seed", 5);
    let shards: usize = arg_parse(&args, "shards", 4);

    println!("== monitoring overlay: density-net monitors + 3-stretch slack sketches ==");
    // Geometric graph: latency correlates with position, like a real WAN.
    let graph = random_geometric(n, (8.0 / n as f64).sqrt(), GeneratorConfig::unit(seed));
    println!(
        "network: random geometric, n = {n}, |E| = {}, distance-weighted edges",
        graph.num_edges()
    );

    let outcome = ThreeStretchScheme::new(eps)
        .build(&graph, &SchemeConfig::default().with_seed(seed))
        .expect("construction");
    let sketches = Arc::new(outcome.sketches);
    println!(
        "\nmonitor placement: |N| = {} monitors sampled (bound {:.0}), zero rounds",
        sketches.net.len(),
        sketches.net.size_bound()
    );
    println!(
        "sketch construction: {} rounds, {} messages; per-client sketch ≤ {} words",
        outcome.stats.rounds,
        outcome.stats.messages,
        sketches.max_words()
    );

    // Serve the operators' latency queries through the sharded query layer:
    // the oracle is shared read-only across worker shards, each with its own
    // LRU result cache (dashboards re-ask the same hot pairs constantly).
    let oracle: Arc<dyn DistanceOracle> = sketches.clone();
    let server = SketchServer::start(
        Arc::clone(&oracle),
        ServeConfig::default().with_shards(shards),
    )
    .expect("server start");
    let client = server.client();
    println!(
        "query server: {} shards, per-shard LRU cache of {} results",
        server.num_shards(),
        server.config().cache_capacity
    );

    // Evaluate the slack guarantee against exact distances, querying the
    // estimates through the server in batches (as a dashboard would).
    let table = DistanceTable::exact(&graph);
    let pairs: Vec<(NodeId, NodeId)> = table.pairs().map(|(u, v, _)| (u, v)).collect();
    let mut estimates = Vec::with_capacity(pairs.len());
    for chunk in pairs.chunks(512) {
        estimates.extend(client.query_batch(chunk));
    }
    let mut far_worst: f64 = 0.0;
    let mut far_sum = 0.0;
    let mut far_count = 0usize;
    let mut near_worst: f64 = 0.0;
    for ((u, v, exact), est) in table.pairs().zip(&estimates) {
        let est = *est.as_ref().expect("connected graph");
        let stretch = est as f64 / exact.max(1) as f64;
        if table.is_eps_far(u, v, eps) {
            far_worst = far_worst.max(stretch);
            far_sum += stretch;
            far_count += 1;
        } else {
            near_worst = near_worst.max(stretch);
        }
    }
    println!("\nlatency-estimate quality (ε = {eps}):");
    print_table(
        &[
            "pair class",
            "pairs",
            "worst stretch",
            "mean stretch",
            "guarantee",
        ],
        &[
            vec![
                "ε-far (covered)".into(),
                far_count.to_string(),
                format!("{far_worst:.2}"),
                format!("{:.2}", far_sum / far_count.max(1) as f64),
                "≤ 3".into(),
            ],
            vec![
                "near (slack)".into(),
                (pairs.len() - far_count).to_string(),
                format!("{near_worst:.2}"),
                "-".into(),
                "none".into(),
            ],
        ],
    );

    // A dashboard keeps re-asking its hot pairs: replay the first rows a few
    // times and let the per-shard caches absorb the repeats.
    let hot: Vec<(NodeId, NodeId)> = pairs.iter().take(256).copied().collect();
    for _ in 0..4 {
        for result in client.query_batch(&hot) {
            result.expect("hot pair");
        }
    }

    // Show a few concrete client → monitor assignments.
    println!("\nsample client → monitor assignments:");
    let mut rows = Vec::new();
    for i in (0..n).step_by((n / 6).max(1)).take(6) {
        let client_node = NodeId::from_index(i);
        let sketch = sketches.sketches.sketch(client_node);
        if let Some((monitor, dist)) = sketch.pivot(0) {
            rows.push(vec![
                client_node.to_string(),
                monitor.to_string(),
                dist.to_string(),
            ]);
        }
    }
    print_table(&["client", "closest monitor", "distance"], &rows);

    drop(client);
    let stats = server.shutdown();
    println!("\nserving statistics: {stats}");
}
