//! Quickstart: build distributed Thorup–Zwick sketches on a random weighted
//! network and answer distance queries from the sketches alone.
//!
//! ```text
//! cargo run --release --bin quickstart -- --nodes 256 --k 3 --seed 7
//! ```

use dsketch::prelude::*;
use dsketch_examples::{arg_parse, print_table};
use netgraph::diameter::estimate_diameters;
use netgraph::generators::{erdos_renyi, GeneratorConfig};
use netgraph::shortest_path::dijkstra;
use netgraph::NodeId;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_parse(&args, "nodes", 256);
    let k: usize = arg_parse(&args, "k", 3);
    let seed: u64 = arg_parse(&args, "seed", 7);

    println!("== distance-sketch quickstart ==");
    println!("network: Erdős–Rényi, n = {n}, average degree ≈ 8, weights 1..100");
    let graph = erdos_renyi(n, 8.0 / n as f64, GeneratorConfig::uniform(seed, 1, 100));
    let diam = estimate_diameters(&graph, 4, seed);
    println!(
        "|E| = {}, hop diameter ≥ {}, shortest-path diameter ≥ {}",
        graph.num_edges(),
        diam.hop_diameter,
        diam.shortest_path_diameter
    );

    println!("\nbuilding Thorup–Zwick sketches with k = {k} (stretch ≤ {}) ...", 2 * k - 1);
    let params = TzParams::new(k).with_seed(seed);
    let result = DistributedTz::run(&graph, &params, DistributedTzConfig::default());
    println!(
        "construction: {} rounds, {} messages, {} words on the wire",
        result.stats.rounds, result.stats.messages, result.stats.words
    );
    println!(
        "sketch size: max {} words, average {:.1} words (exact oracle would need {} words/node)",
        result.sketches.max_words(),
        result.sketches.avg_words(),
        n - 1
    );

    // Answer a few queries from the sketches and compare with exact distances.
    println!("\nsample queries (estimate vs exact):");
    let mut rows = Vec::new();
    let mut worst: f64 = 1.0;
    for i in 0..8u32 {
        let u = NodeId((i * 37) % n as u32);
        let v = NodeId((i * 113 + 59) % n as u32);
        if u == v {
            continue;
        }
        let est = estimate_distance(result.sketches.sketch(u), result.sketches.sketch(v))
            .expect("connected graph");
        let exact = dijkstra(&graph, u).distance(v);
        let stretch = est as f64 / exact.max(1) as f64;
        worst = worst.max(stretch);
        rows.push(vec![
            u.to_string(),
            v.to_string(),
            est.to_string(),
            exact.to_string(),
            format!("{stretch:.2}"),
        ]);
    }
    print_table(&["u", "v", "estimate", "exact", "stretch"], &rows);
    println!(
        "\nworst sampled stretch {:.2} (guarantee: ≤ {})",
        worst,
        2 * k - 1
    );
}
