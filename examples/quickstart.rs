//! Quickstart: build distance sketches on a random weighted network and
//! answer distance queries from the sketches alone.
//!
//! The scheme is chosen at runtime — every family runs through the same
//! `SketchBuilder` / `DistanceOracle` code path:
//!
//! ```text
//! cargo run --release --bin quickstart -- --nodes 256 --scheme tz:3
//! cargo run --release --bin quickstart -- --scheme 3stretch:0.25
//! cargo run --release --bin quickstart -- --scheme cdg:0.2,2
//! cargo run --release --bin quickstart -- --scheme degrading:3
//! ```
//!
//! Sketches are an artifact: pay the construction once, keep the file.
//! `--save g.dsk` persists the built sketches as a `DSK1` snapshot;
//! `--load g.dsk` skips the construction entirely and answers the same
//! queries from the snapshot (refusing a snapshot built on a different
//! graph):
//!
//! ```text
//! cargo run --release --bin quickstart -- --scheme tz:3 --save g.dsk
//! cargo run --release --bin quickstart -- --scheme tz:3 --load g.dsk
//! ```
//!
//! `--threads N` builds on the direct parallel engine instead of the
//! CONGEST simulator (`0` = all cores; identical sketches either way,
//! minus the simulator's round/message accounting):
//!
//! ```text
//! cargo run --release --bin quickstart -- --scheme tz:3 --threads 4 --save g.dsk
//! ```

use dsketch::prelude::*;
use dsketch_examples::{arg_parse, arg_value, print_table};
use netgraph::diameter::estimate_diameters;
use netgraph::generators::{erdos_renyi, GeneratorConfig};
use netgraph::shortest_path::dijkstra;
use netgraph::{Graph, NodeId};

/// Build in the CONGEST simulator (optionally saving the snapshot), or
/// cold-start from a previously saved snapshot.
fn obtain_oracle(
    graph: &Graph,
    spec: SchemeSpec,
    seed: u64,
    threads: Option<usize>,
    save: Option<String>,
    load: Option<String>,
) -> Box<dyn DistanceOracle> {
    if let Some(path) = load {
        if save.is_some() {
            eprintln!("note: --save is ignored when --load is given (nothing is rebuilt)");
        }
        println!("\nloading '{spec}' sketches from snapshot {path} (no construction) ...");
        let started = std::time::Instant::now();
        let oracle = dsketch_store::load_oracle_for_graph(&path, graph).unwrap_or_else(|e| {
            eprintln!("load failed: {e}");
            std::process::exit(2);
        });
        println!(
            "cold start: {:.1} ms, zero CONGEST rounds",
            started.elapsed().as_secs_f64() * 1e3
        );
        return oracle;
    }

    let mut config = SchemeConfig::default().with_seed(seed);
    match threads {
        Some(t) => {
            config = config.with_parallel_build().with_threads(t);
            println!(
                "\nbuilding '{spec}' sketches with the parallel engine \
                 ({} worker threads) ...",
                dsketch::parallel::resolve_threads(t)
            );
        }
        None => {
            println!("\nbuilding '{spec}' sketches with the distributed CONGEST construction ...")
        }
    }
    let report = |stats: &RunStats| {
        if stats.rounds > 0 {
            println!(
                "construction: {} rounds, {} messages, {} words on the wire",
                stats.rounds, stats.messages, stats.words
            );
        }
    };
    if let Some(path) = save {
        // Build through the store pipeline, which keeps the family-typed
        // sketches, so the same build is both saved and queried.
        let contents = dsketch_store::build_stored(graph, spec, &config).unwrap_or_else(|e| {
            eprintln!("construction failed: {e}");
            std::process::exit(2);
        });
        report(&contents.build_stats.clone().expect("build records stats"));
        let bytes = dsketch_store::save_snapshot(&path, &contents).unwrap_or_else(|e| {
            eprintln!("save failed: {e}");
            std::process::exit(2);
        });
        println!("saved snapshot {path}: {bytes} bytes (reload with --load {path})");
        return contents.into_oracle();
    }
    let outcome = SketchBuilder::new(spec)
        .seed(seed)
        .engine(config.engine)
        .threads(config.threads)
        .build(graph)
        .unwrap_or_else(|e| {
            eprintln!("construction failed: {e}");
            std::process::exit(2);
        });
    report(&outcome.stats);
    outcome.sketches
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_parse(&args, "nodes", 256);
    let seed: u64 = arg_parse(&args, "seed", 7);
    let scheme_text = arg_value(&args, "scheme").unwrap_or_else(|| "tz:3".to_string());
    let spec = SchemeSpec::parse(&scheme_text).unwrap_or_else(|e| {
        eprintln!("{e}; try tz:3, 3stretch:0.25, cdg:0.2,2 or degrading");
        std::process::exit(2);
    });

    println!("== distance-sketch quickstart ==");
    println!("network: Erdős–Rényi, n = {n}, average degree ≈ 8, weights 1..100");
    let graph = erdos_renyi(n, 8.0 / n as f64, GeneratorConfig::uniform(seed, 1, 100));
    let diam = estimate_diameters(&graph, 4, seed);
    println!(
        "|E| = {}, hop diameter ≥ {}, shortest-path diameter ≥ {}",
        graph.num_edges(),
        diam.hop_diameter,
        diam.shortest_path_diameter
    );

    let oracle = obtain_oracle(
        &graph,
        spec,
        seed,
        arg_value(&args, "threads").map(|t| {
            t.parse().unwrap_or_else(|_| {
                eprintln!("--threads {t}: expected a thread count (0 = all cores)");
                std::process::exit(2);
            })
        }),
        arg_value(&args, "save"),
        arg_value(&args, "load"),
    );
    println!(
        "sketch size: max {} words, average {:.1} words (exact oracle would need {} words/node)",
        oracle.max_words(),
        oracle.avg_words(),
        n - 1
    );
    match oracle.stretch_bound() {
        Some(bound) => println!("nominal stretch guarantee: ≤ {bound}"),
        None => println!("nominal stretch guarantee: O(log 1/ε) for every ε (degrading)"),
    }

    // Answer a few queries from the sketches and compare with exact distances.
    println!("\nsample queries (estimate vs exact):");
    let mut rows = Vec::new();
    let mut worst: f64 = 1.0;
    for i in 0..8u32 {
        let u = NodeId((i * 37) % n as u32);
        let v = NodeId((i * 113 + 59) % n as u32);
        if u == v {
            continue;
        }
        let est = oracle.estimate(u, v).expect("connected graph");
        let exact = dijkstra(&graph, u).distance(v);
        let stretch = est as f64 / exact.max(1) as f64;
        worst = worst.max(stretch);
        rows.push(vec![
            u.to_string(),
            v.to_string(),
            est.to_string(),
            exact.to_string(),
            format!("{stretch:.2}"),
        ]);
    }
    print_table(&["u", "v", "estimate", "exact", "stretch"], &rows);
    match oracle.stretch_bound() {
        Some(bound) => println!("\nworst sampled stretch {worst:.2} (guarantee: ≤ {bound})"),
        None => println!("\nworst sampled stretch {worst:.2}"),
    }
}
