//! Quickstart: build distance sketches on a random weighted network and
//! answer distance queries from the sketches alone.
//!
//! The scheme is chosen at runtime — every family runs through the same
//! `SketchBuilder` / `DistanceOracle` code path:
//!
//! ```text
//! cargo run --release --bin quickstart -- --nodes 256 --scheme tz:3
//! cargo run --release --bin quickstart -- --scheme 3stretch:0.25
//! cargo run --release --bin quickstart -- --scheme cdg:0.2,2
//! cargo run --release --bin quickstart -- --scheme degrading:3
//! ```

use dsketch::prelude::*;
use dsketch_examples::{arg_parse, arg_value, print_table};
use netgraph::diameter::estimate_diameters;
use netgraph::generators::{erdos_renyi, GeneratorConfig};
use netgraph::shortest_path::dijkstra;
use netgraph::NodeId;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_parse(&args, "nodes", 256);
    let seed: u64 = arg_parse(&args, "seed", 7);
    let scheme_text = arg_value(&args, "scheme").unwrap_or_else(|| "tz:3".to_string());
    let spec = SchemeSpec::parse(&scheme_text).unwrap_or_else(|e| {
        eprintln!("{e}; try tz:3, 3stretch:0.25, cdg:0.2,2 or degrading");
        std::process::exit(2);
    });

    println!("== distance-sketch quickstart ==");
    println!("network: Erdős–Rényi, n = {n}, average degree ≈ 8, weights 1..100");
    let graph = erdos_renyi(n, 8.0 / n as f64, GeneratorConfig::uniform(seed, 1, 100));
    let diam = estimate_diameters(&graph, 4, seed);
    println!(
        "|E| = {}, hop diameter ≥ {}, shortest-path diameter ≥ {}",
        graph.num_edges(),
        diam.hop_diameter,
        diam.shortest_path_diameter
    );

    println!("\nbuilding '{spec}' sketches with the distributed CONGEST construction ...");
    let outcome = SketchBuilder::new(spec)
        .seed(seed)
        .build(&graph)
        .unwrap_or_else(|e| {
            eprintln!("construction failed: {e}");
            std::process::exit(2);
        });
    let oracle = &outcome.sketches;
    println!(
        "construction: {} rounds, {} messages, {} words on the wire",
        outcome.stats.rounds, outcome.stats.messages, outcome.stats.words
    );
    println!(
        "sketch size: max {} words, average {:.1} words (exact oracle would need {} words/node)",
        oracle.max_words(),
        oracle.avg_words(),
        n - 1
    );
    match oracle.stretch_bound() {
        Some(bound) => println!("nominal stretch guarantee: ≤ {bound}"),
        None => println!("nominal stretch guarantee: O(log 1/ε) for every ε (degrading)"),
    }

    // Answer a few queries from the sketches and compare with exact distances.
    println!("\nsample queries (estimate vs exact):");
    let mut rows = Vec::new();
    let mut worst: f64 = 1.0;
    for i in 0..8u32 {
        let u = NodeId((i * 37) % n as u32);
        let v = NodeId((i * 113 + 59) % n as u32);
        if u == v {
            continue;
        }
        let est = oracle.estimate(u, v).expect("connected graph");
        let exact = dijkstra(&graph, u).distance(v);
        let stretch = est as f64 / exact.max(1) as f64;
        worst = worst.max(stretch);
        rows.push(vec![
            u.to_string(),
            v.to_string(),
            est.to_string(),
            exact.to_string(),
            format!("{stretch:.2}"),
        ]);
    }
    print_table(&["u", "v", "estimate", "exact", "stretch"], &rows);
    match oracle.stretch_bound() {
        Some(bound) => println!("\nworst sampled stretch {worst:.2} (guarantee: ≤ {bound})"),
        None => println!("\nworst sampled stretch {worst:.2}"),
    }
}
