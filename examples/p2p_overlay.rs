//! P2P overlay scenario (Section 2.1 of the paper): a peer-to-peer overlay
//! wants to answer "how far is peer B from peer A?" in real time.
//!
//! Without preprocessing, every query costs an on-demand distributed
//! Bellman–Ford — `Ω(S)` rounds, where the shortest-path diameter `S` can be
//! far larger than the hop diameter `D`.  With Thorup–Zwick sketches
//! precomputed, a query only needs to ship one sketch across the overlay
//! (`O(D)`-ish rounds) and runs a constant-time local computation.
//!
//! This example builds a chorded-ring overlay (heavy chords ⇒ `D ≪ S`),
//! precomputes sketches, and then compares the per-query round cost of the
//! two approaches on a batch of random queries.
//!
//! ```text
//! cargo run --release --bin p2p_overlay -- --nodes 200 --queries 10
//! ```

use congest_sim::programs::bellman_ford::BellmanFordProgram;
use congest_sim::{CongestConfig, Network};
use dsketch::prelude::*;
use dsketch_examples::{arg_parse, print_table};
use netgraph::diameter::diameters;
use netgraph::generators::{ring_with_chords, GeneratorConfig};
use netgraph::shortest_path::dijkstra;
use netgraph::NodeId;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_parse(&args, "nodes", 200);
    let queries: usize = arg_parse(&args, "queries", 10);
    let seed: u64 = arg_parse(&args, "seed", 11);
    let k: usize = arg_parse(&args, "k", 3);

    println!("== P2P overlay: sketch queries vs on-demand Bellman–Ford ==");
    // Ring with heavy chords: chords shrink the hop diameter (fast gossip)
    // but weighted shortest paths still go the long way around.
    let graph = ring_with_chords(n, n / 4, 50_000, GeneratorConfig::unit(seed));
    let d = diameters(&graph);
    println!(
        "overlay: chorded ring, n = {n}, |E| = {}, hop diameter D = {}, shortest-path diameter S = {}",
        graph.num_edges(),
        d.hop_diameter,
        d.shortest_path_diameter
    );

    // --- preprocessing: build sketches once ---
    let result = ThorupZwickScheme::new(k)
        .build(&graph, &SchemeConfig::default().with_seed(seed))
        .expect("construction");
    println!(
        "\npreprocessing: {} rounds, {} messages (one-time cost, stretch ≤ {})",
        result.stats.rounds,
        result.stats.messages,
        2 * k - 1
    );
    println!(
        "per-node sketch: max {} words — this is what a peer ships when queried",
        result.sketches.max_words()
    );

    // --- queries ---
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let mut rows = Vec::new();
    let mut ondemand_total_rounds = 0u64;
    let mut sketch_total_rounds = 0u64;
    for _ in 0..queries {
        let u = NodeId(rng.gen_range(0..n as u32));
        let v = NodeId(rng.gen_range(0..n as u32));
        if u == v {
            continue;
        }

        // On-demand exact computation: distributed Bellman-Ford from u, which
        // needs Ω(S) rounds before v knows its distance.
        let mut net = Network::new(&graph, CongestConfig::default(), |x| {
            BellmanFordProgram::new(x, x == u)
        });
        let outcome = net.run_until_quiescent(u64::MAX);
        let exact_via_bf = net.program(v).distance();
        ondemand_total_rounds += outcome.stats.rounds;

        // Sketch-based query: actually simulate the online exchange — u
        // floods a request, v streams its sketch back along the reverse
        // path, and u computes the estimate locally (Section 2.1).
        let (estimate, exchange_stats) = dsketch::distributed::run_sketch_exchange(
            &graph,
            &result.sketches,
            u,
            v,
            CongestConfig::default(),
        );
        let estimate = estimate.expect("connected overlay");
        sketch_total_rounds += exchange_stats.rounds;
        let exact = dijkstra(&graph, u).distance(v);
        assert_eq!(exact, exact_via_bf, "simulator sanity check");
        assert_eq!(
            estimate,
            result.sketches.estimate(u, v).unwrap(),
            "the shipped sketch must answer exactly like a local query"
        );

        rows.push(vec![
            format!("{u}→{v}"),
            outcome.stats.rounds.to_string(),
            exchange_stats.rounds.to_string(),
            exact.to_string(),
            estimate.to_string(),
            format!("{:.2}", estimate as f64 / exact.max(1) as f64),
        ]);
    }
    print_table(
        &[
            "query",
            "on-demand rounds",
            "sketch rounds",
            "exact",
            "estimate",
            "stretch",
        ],
        &rows,
    );
    println!(
        "\ntotals over {} queries: on-demand {} rounds vs sketch-based {} rounds \
         (speedup ≈ {:.1}x, after a one-time preprocessing of {} rounds)",
        rows.len(),
        ondemand_total_rounds,
        sketch_total_rounds,
        ondemand_total_rounds as f64 / sketch_total_rounds.max(1) as f64,
        result.stats.rounds
    );
}
