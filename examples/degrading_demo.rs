//! Gracefully degrading sketches (Theorem 4.8 / Corollary 4.9): one sketch
//! per node that is accurate "on average" — constant average stretch —
//! while still bounding the worst case by O(log n).
//!
//! The example builds the layered construction on a power-law overlay (the
//! social/P2P topology of Section 2.1), prints the per-layer cost, and then
//! compares worst-case and average stretch against a plain Thorup–Zwick
//! sketch of comparable worst-case stretch.
//!
//! ```text
//! cargo run --release --bin degrading_demo -- --nodes 200
//! ```

use dsketch::prelude::*;
use dsketch_examples::{arg_parse, print_table};
use netgraph::apsp::DistanceTable;
use netgraph::generators::{preferential_attachment, GeneratorConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = arg_parse(&args, "nodes", 200);
    let seed: u64 = arg_parse(&args, "seed", 3);
    let max_k: usize = arg_parse(&args, "max-k", 3);

    println!("== gracefully degrading sketches: O(1) average stretch ==");
    let graph = preferential_attachment(n, 3, GeneratorConfig::uniform(seed, 1, 100));
    println!(
        "network: preferential attachment (power-law), n = {n}, |E| = {}",
        graph.num_edges()
    );

    // Layered CDG construction.
    let outcome = DegradingScheme::new()
        .with_max_k(max_k)
        .build(&graph, &SchemeConfig::default().with_seed(seed))
        .expect("construction");
    let degrading = &outcome.sketches;
    println!("\nlayers (ε_i = 2^-i, k_i = min(i, {max_k})):");
    let mut rows = Vec::new();
    for (i, layer) in degrading.layers.iter().enumerate() {
        rows.push(vec![
            format!("{}", i + 1),
            format!("{:.4}", layer.params.eps),
            layer.params.k.to_string(),
            layer.net.len().to_string(),
            layer.stats.rounds.to_string(),
            layer.max_words().to_string(),
        ]);
    }
    print_table(
        &["layer", "eps", "k", "|net|", "rounds", "max words"],
        &rows,
    );
    println!(
        "total: {} rounds, {} messages, combined sketch ≤ {} words per node",
        outcome.stats.rounds,
        outcome.stats.messages,
        degrading.max_words()
    );

    // Baseline: plain TZ with k = log n (the smallest-sketch point of Thm 1.1).
    let tz_scheme = ThorupZwickScheme::log_n(n);
    let plain = tz_scheme
        .build(&graph, &SchemeConfig::default().with_seed(seed))
        .expect("construction");

    // Compare stretch statistics over all pairs.
    let table = DistanceTable::exact(&graph);
    let stats_for = |estimate: &dyn Fn(netgraph::NodeId, netgraph::NodeId) -> u64| {
        let mut worst: f64 = 0.0;
        let mut sum = 0.0;
        let mut count = 0usize;
        for (u, v, exact) in table.pairs() {
            let est = estimate(u, v);
            let s = est as f64 / exact.max(1) as f64;
            worst = worst.max(s);
            sum += s;
            count += 1;
        }
        (worst, sum / count as f64)
    };
    let (deg_worst, deg_avg) = stats_for(&|u, v| degrading.estimate(u, v).unwrap());
    let (tz_worst, tz_avg) = stats_for(&|u, v| plain.sketches.estimate(u, v).unwrap());

    println!("\nstretch comparison over all pairs:");
    print_table(
        &["scheme", "worst", "average", "max words/node"],
        &[
            vec![
                "gracefully degrading".into(),
                format!("{deg_worst:.2}"),
                format!("{deg_avg:.2}"),
                degrading.max_words().to_string(),
            ],
            vec![
                format!("Thorup–Zwick k = {}", tz_scheme.k),
                format!("{tz_worst:.2}"),
                format!("{tz_avg:.2}"),
                plain.sketches.max_words().to_string(),
            ],
        ],
    );
    println!(
        "\nThe degrading sketch keeps the same O(log n) worst case but pushes the \
         average stretch toward a constant (Corollary 4.9)."
    );
}
