//! Shared helpers for the example binaries.
//!
//! The example applications demonstrate the public API of the
//! distance-sketch workspace on the scenarios the paper's introduction
//! motivates (peer-to-peer overlays, monitoring overlays, topology-aware
//! queries).  Everything here is small glue: argument parsing without extra
//! dependencies, and a tiny table printer for human-readable output.

/// Parse `--name value` style arguments from `std::env::args`, returning the
/// value for `name` if present.
pub fn arg_value(args: &[String], name: &str) -> Option<String> {
    let flag = format!("--{name}");
    args.iter()
        .position(|a| a == &flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parse a numeric `--name value` argument with a default.
pub fn arg_parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    arg_value(args, name)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Render rows as a fixed-width table with a header.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_value_finds_flag() {
        let args: Vec<String> = ["prog", "--nodes", "128", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "nodes"), Some("128".to_string()));
        assert_eq!(arg_value(&args, "seed"), Some("7".to_string()));
        assert_eq!(arg_value(&args, "missing"), None);
    }

    #[test]
    fn arg_parse_falls_back_to_default() {
        let args: Vec<String> = ["prog", "--nodes", "oops"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_parse(&args, "nodes", 64usize), 64);
        assert_eq!(arg_parse(&args, "absent", 3u64), 3);
        let ok: Vec<String> = ["prog", "--nodes", "12"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_parse(&ok, "nodes", 64usize), 12);
    }
}
