//! Offline stand-in for the crates.io `criterion` benchmark harness.
//!
//! Implements the API surface the workspace's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Throughput`] — as a plain timing loop: each benchmark
//! body is run `sample_size` times and the mean/min wall-clock times are
//! printed.  No statistical analysis, plots, or CLI filtering.
//!
//! Benches are declared with `harness = false` in the manifest, exactly as
//! they would be with the real criterion, so swapping the real crate back in
//! requires no source changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark identifier: a function name plus an optional parameter, printed
/// as `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, like `distributed/3`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id consisting of a parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            text: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

/// Throughput annotation for a benchmark group (recorded, printed alongside
/// timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Passed to every benchmark body; runs the measured closure.
pub struct Bencher {
    iterations: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine`, running it once per configured sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.iterations {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    harness: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed iterations each benchmark runs (min 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Record the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, &mut f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Explicitly end the group (all output is printed eagerly, so this is a
    /// no-op kept for API compatibility).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let iterations = self.sample_size.min(self.harness.max_sample_size);
        let mut bencher = Bencher {
            iterations,
            samples: Vec::with_capacity(iterations),
        };
        f(&mut bencher);
        let samples = bencher.samples;
        if samples.is_empty() {
            println!("{}/{}: no samples recorded", self.name, id);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.0} elem/s)", n as f64 / mean.as_secs_f64().max(1e-12))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.0} B/s)", n as f64 / mean.as_secs_f64().max(1e-12))
            }
            None => String::new(),
        };
        println!(
            "{}/{}: mean {:?}, min {:?} over {} iter{}",
            self.name,
            id,
            mean,
            min,
            samples.len(),
            throughput
        );
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    max_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `--quick-bench` (or the env var) caps every benchmark at one
        // iteration so the suite can be smoke-tested cheaply.
        let quick = std::env::args().any(|a| a == "--quick-bench")
            || std::env::var_os("CRITERION_QUICK").is_some();
        Criterion {
            max_sample_size: if quick { 1 } else { usize::MAX },
        }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            harness: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_samples() {
        let mut c = Criterion {
            max_sample_size: usize::MAX,
        };
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("test");
            group.sample_size(3);
            group.bench_function("count", |b| b.iter(|| runs += 1));
            group.finish();
        }
        assert_eq!(runs, 3);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion {
            max_sample_size: usize::MAX,
        };
        let mut seen = 0u64;
        {
            let mut group = c.benchmark_group("test");
            group.sample_size(1);
            group.throughput(Throughput::Elements(7));
            group.bench_with_input(BenchmarkId::new("input", 7), &7u64, |b, &x| {
                b.iter(|| seen = x)
            });
        }
        assert_eq!(seen, 7);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
