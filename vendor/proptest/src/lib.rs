//! Offline stand-in for the crates.io `proptest` crate.
//!
//! Implements the API surface the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with [`Strategy::prop_map`], range and
//! tuple strategies, [`prop::collection::vec`], [`ProptestConfig`], and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Unlike the real proptest there is no shrinking and no failure
//! persistence: each test runs its configured number of cases with inputs
//! drawn from a deterministic per-case seed, and a failing case panics with
//! the case number so it can be replayed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::Rng;

/// Per-test configuration (a subset of the real proptest's).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u32, u64, usize, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Strategy combinators, mirroring the real crate's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy producing `Vec`s of `element` with a length drawn from
        /// `sizes`.
        pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, sizes }
        }

        /// The [`vec()`] strategy.
        pub struct VecStrategy<S> {
            element: S,
            sizes: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let len = if self.sizes.is_empty() {
                    0
                } else {
                    rng.gen_range(self.sizes.clone())
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy};
}

/// Assert inside a property test (plain `assert!`; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Assert equality inside a property test (plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Skip the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declare property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `body` on `config.cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    // One deterministic RNG per (test, case): the case number
                    // printed on failure is enough to replay it.
                    let mut proptest_rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(
                        0xC0FFEE ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let run = std::panic::AssertUnwindSafe(|| {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut proptest_rng);)+
                        $body
                    });
                    if let Err(panic) = std::panic::catch_unwind(run) {
                        eprintln!("proptest case {case} of {} failed", stringify!($name));
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    (
        $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($pat in $strat),+) $body)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..10, w in 1u64..=5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((1..=5).contains(&w));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn tuples_and_prop_map_compose((a, b) in (0u32..4, 0u32..4).prop_map(|(x, y)| (x * 2, y))) {
            prop_assert_eq!(a % 2, 0);
            prop_assert!(b < 4);
        }

        #[test]
        fn vec_strategy_respects_sizes(v in prop::collection::vec(0u32..100, 0..7)) {
            prop_assert!(v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
