//! Offline stand-in for the crates.io `rand` crate.
//!
//! The workspace builds in hermetic environments without registry access, so
//! this crate provides exactly the API surface the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], [`Rng::gen_bool`],
//! [`Rng::gen_range`] over the integer/float range types the generators use,
//! and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast, well
//! distributed, and deterministic for a fixed seed, which is all the
//! constructions need (they sample Bernoulli coins and uniform weights).
//! The streams differ from the real `rand::StdRng`, so recorded seeds are
//! tied to this implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An unbiased uniform draw from `[0, bound)` (rejection sampling).
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

/// Types that can serve as a [`Rng::gen_range`] argument: a range together
/// with a way to draw a uniform sample from it.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.next_below(span) as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.next_below(span + 1) as $t
            }
        }
    )*};
}

int_range_impls!(u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Guard against landing exactly on the excluded endpoint through
        // floating-point rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from(self, rng: &mut impl RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Return `true` with probability `p` (`p` is clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle(&mut self, rng: &mut impl RngCore);

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose(&self, rng: &mut impl RngCore) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle(&mut self, rng: &mut impl RngCore) {
            for i in (1..self.len()).rev() {
                let j = rng.next_below(i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose(&self, rng: &mut impl RngCore) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.next_below(self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
        let mut c = StdRng::seed_from_u64(43);
        let differs = (0..100).any(|_| a.gen_range(0..1000u64) != c.gen_range(0..1000u64));
        assert!(differs);
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5..10usize);
            assert!((5..10).contains(&v));
            let w = rng.gen_range(1..=6u64);
            assert!((1..=6).contains(&w));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let g = rng.gen_range(f64::EPSILON..=1.0);
            assert!(g > 0.0 && g <= 1.0);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "shuffle of 50 elements should move something");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert!(orig.contains(v.choose(&mut rng).unwrap()));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
