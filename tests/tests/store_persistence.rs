//! Cross-crate persistence contract: for every sketch family, the
//! build → save → load → serve pipeline is lossless and hostile input is
//! rejected with typed errors.
//!
//! * Codec round trips (`decode(encode(x)) == x`, and the encoding is
//!   canonical: `encode(decode(bytes)) == bytes`) — property-tested over
//!   random graphs, seeds, and parameters for all four families.
//! * A snapshot-loaded oracle answers **bit-identically** to the freshly
//!   built one on a 1000-node graph, for all four families.
//! * Truncations and bit flips anywhere in a snapshot are rejected with a
//!   typed `StoreError` — never a panic, never a silently wrong oracle.
//! * A snapshot never serves against a graph it was not built on
//!   (fingerprint check), and `SketchServer::from_snapshot` cold-starts a
//!   server whose answers match the in-memory oracle.

use dsketch::codec::SketchCodec;
use dsketch::prelude::*;
use dsketch_serve::{ServeConfig, SketchServer};
use dsketch_store::{build_stored, load_oracle, load_oracle_for_graph, save_snapshot, StoreError};
use netgraph::generators::{erdos_renyi, GeneratorConfig};
use netgraph::{Graph, NodeId};
use proptest::prelude::*;
use std::path::PathBuf;

fn graph(n: usize, seed: u64) -> Graph {
    erdos_renyi(n, 8.0 / n as f64, GeneratorConfig::uniform(seed, 1, 50))
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dsketch_store_integration");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn config(seed: u64) -> SchemeConfig {
    SchemeConfig::default().with_seed(seed)
}

/// A deterministic sample of query pairs covering the whole id range.
fn sample_pairs(n: usize, count: u32) -> impl Iterator<Item = (NodeId, NodeId)> {
    (0..count).map(move |i| {
        (
            NodeId((i.wrapping_mul(2654435761)) % n as u32),
            NodeId((i.wrapping_mul(40503).wrapping_add(12345)) % n as u32),
        )
    })
}

fn assert_estimates_identical(a: &dyn DistanceOracle, b: &dyn DistanceOracle, n: usize) {
    for (u, v) in sample_pairs(n, 2_000) {
        match (a.estimate(u, v), b.estimate(u, v)) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "estimate mismatch at ({u}, {v})"),
            (Err(_), Err(_)) => {}
            (x, y) => panic!("one oracle failed at ({u}, {v}): {x:?} vs {y:?}"),
        }
        assert_eq!(a.words(u), b.words(u), "label size mismatch at {u}");
    }
}

// ---------------------------------------------------------------------------
// Property tests: encode/decode round trips per family
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn tz_codec_round_trips((n, seed, k) in (24usize..64, 0u64..1_000, 1usize..4)) {
        let g = graph(n, seed);
        let built = ThorupZwickScheme::new(k)
            .build(&g, &config(seed))
            .unwrap()
            .sketches;
        let bytes = built.to_bytes();
        let decoded = TzSketchSet::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&decoded.sketches, &built.sketches);
        prop_assert_eq!(&decoded.hierarchy, &built.hierarchy);
        // Canonical: re-encoding reproduces the same bytes.
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }

    #[test]
    fn three_stretch_codec_round_trips((n, seed) in (24usize..64, 0u64..1_000)) {
        let g = graph(n, seed);
        let built = ThreeStretchScheme::new(0.4)
            .build(&g, &config(seed))
            .unwrap()
            .sketches;
        let bytes = built.to_bytes();
        let decoded = ThreeStretchSketchSet::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&decoded.net, &built.net);
        prop_assert_eq!(&decoded.sketches, &built.sketches);
        prop_assert_eq!(&decoded.stats, &built.stats);
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }

    #[test]
    fn cdg_codec_round_trips((n, seed, k) in (24usize..64, 0u64..1_000, 1usize..3)) {
        let g = graph(n, seed);
        let built = CdgScheme::new(0.4, k)
            .build(&g, &config(seed))
            .unwrap()
            .sketches;
        let bytes = built.to_bytes();
        let decoded = CdgSketchSet::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&decoded.params, &built.params);
        prop_assert_eq!(&decoded.net, &built.net);
        prop_assert_eq!(&decoded.hierarchy, &built.hierarchy);
        prop_assert_eq!(&decoded.sketches, &built.sketches);
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }

    #[test]
    fn degrading_codec_round_trips((n, seed) in (24usize..64, 0u64..1_000)) {
        let g = graph(n, seed);
        let built = DegradingScheme::new()
            .with_max_k(2)
            .with_max_layers(2)
            .build(&g, &config(seed))
            .unwrap()
            .sketches;
        let bytes = built.to_bytes();
        let decoded = DegradingSketchSet::from_bytes(&bytes).unwrap();
        prop_assert_eq!(decoded.num_layers(), built.num_layers());
        for (a, b) in decoded.layers.iter().zip(built.layers.iter()) {
            prop_assert_eq!(&a.sketches, &b.sketches);
            prop_assert_eq!(&a.net, &b.net);
            prop_assert_eq!(&a.hierarchy, &b.hierarchy);
        }
        prop_assert_eq!(&decoded.stats, &built.stats);
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }

    #[test]
    fn truncation_anywhere_is_rejected_everywhere((seed, cut_fraction) in (0u64..500, 0.0f64..1.0)) {
        // Build a small snapshot, cut it at a random point, expect a typed
        // error (sampled here; the exhaustive small-file sweep is below).
        let g = graph(32, seed);
        let contents = build_stored(&g, SchemeSpec::thorup_zwick(2), &config(seed)).unwrap();
        let mut bytes = Vec::new();
        dsketch_store::write_snapshot(&mut bytes, &contents).unwrap();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        let result = dsketch_store::read_snapshot(&bytes[..cut.min(bytes.len() - 1)]);
        prop_assert!(result.is_err());
    }
}

// ---------------------------------------------------------------------------
// 1k-node bit-identical round trips, per family
// ---------------------------------------------------------------------------

fn check_1k_round_trip(spec: SchemeSpec, file: &str) {
    let n = 1_000;
    let g = graph(n, 9);
    let contents = build_stored(&g, spec, &config(21)).unwrap();
    let path = temp_path(file);
    save_snapshot(&path, &contents).unwrap();
    let loaded = load_oracle_for_graph(&path, &g).unwrap();
    assert_eq!(loaded.scheme_name(), spec.name());
    assert_eq!(loaded.num_nodes(), n);
    assert_estimates_identical(contents.sketches.as_oracle(), loaded.as_ref(), n);
    std::fs::remove_file(&path).ok();
}

#[test]
fn tz_1k_round_trip_is_bit_identical() {
    check_1k_round_trip(SchemeSpec::thorup_zwick(3), "tz_1k.dsk");
}

#[test]
fn three_stretch_1k_round_trip_is_bit_identical() {
    check_1k_round_trip(SchemeSpec::three_stretch(0.3), "ts_1k.dsk");
}

#[test]
fn cdg_1k_round_trip_is_bit_identical() {
    check_1k_round_trip(SchemeSpec::cdg(0.3, 2), "cdg_1k.dsk");
}

#[test]
fn degrading_1k_round_trip_is_bit_identical() {
    check_1k_round_trip(
        SchemeSpec::Degrading {
            max_layers: Some(3),
            max_k: Some(2),
        },
        "deg_1k.dsk",
    );
}

// ---------------------------------------------------------------------------
// Corruption and mismatch rejection
// ---------------------------------------------------------------------------

#[test]
fn every_single_byte_corruption_is_rejected() {
    // Exhaustive over a small snapshot: flip one bit in *every* byte and
    // truncate at *every* length; each must yield Err, never Ok or panic.
    let g = graph(24, 3);
    let contents = build_stored(&g, SchemeSpec::thorup_zwick(2), &config(3)).unwrap();
    let mut bytes = Vec::new();
    dsketch_store::write_snapshot(&mut bytes, &contents).unwrap();

    for i in 0..bytes.len() {
        let mut flipped = bytes.clone();
        flipped[i] ^= 0x10;
        assert!(
            dsketch_store::read_snapshot(flipped.as_slice()).is_err(),
            "bit flip at byte {i} of {} was not detected",
            bytes.len()
        );
    }
    for cut in 0..bytes.len() {
        assert!(
            dsketch_store::read_snapshot(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes was not detected"
        );
    }
    // The pristine bytes still load (the loop above did not depend on luck).
    assert!(dsketch_store::read_snapshot(bytes.as_slice()).is_ok());
}

#[test]
fn snapshot_refuses_to_serve_a_different_graph() {
    let g = graph(64, 5);
    let path = temp_path("mismatch.dsk");
    let contents = build_stored(&g, SchemeSpec::cdg(0.3, 1), &config(5)).unwrap();
    save_snapshot(&path, &contents).unwrap();

    // Same n, different weights: only the weight checksum differs.
    let reweighted = erdos_renyi(64, 8.0 / 64.0, GeneratorConfig::uniform(5, 1, 51));
    let result = load_oracle_for_graph(&path, &reweighted);
    match result {
        Err(StoreError::FingerprintMismatch { snapshot, graph }) => {
            assert_eq!(snapshot.nodes, graph.nodes);
            assert_ne!(snapshot.weight_checksum, graph.weight_checksum);
        }
        Err(other) => panic!("expected FingerprintMismatch, got {other}"),
        Ok(_) => panic!("wrong graph must be refused"),
    }
    // The right graph still loads.
    assert!(load_oracle_for_graph(&path, &g).is_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn garbage_files_fail_with_bad_magic_or_truncation() {
    assert!(matches!(
        dsketch_store::read_snapshot(&b"this is not a snapshot at all!!"[..]),
        Err(StoreError::BadMagic { .. })
    ));
    assert!(matches!(
        dsketch_store::read_snapshot(&b"DSK"[..]),
        Err(StoreError::Truncated { .. })
    ));
}

// ---------------------------------------------------------------------------
// Cold-starting the serving layer from a snapshot
// ---------------------------------------------------------------------------

#[test]
fn server_cold_started_from_snapshot_matches_direct_estimates() {
    let n = 128;
    let g = graph(n, 11);
    let path = temp_path("serve_cold_start.dsk");
    let contents = build_stored(&g, SchemeSpec::three_stretch(0.3), &config(11)).unwrap();
    save_snapshot(&path, &contents).unwrap();

    let server = SketchServer::from_snapshot(&path, ServeConfig::default().with_shards(2)).unwrap();
    let client = server.client();
    let direct = contents.sketches.as_oracle();
    let pairs: Vec<_> = sample_pairs(n, 500).collect();
    for chunk in pairs.chunks(64) {
        for (result, &(u, v)) in client.query_batch(chunk).into_iter().zip(chunk) {
            assert_eq!(
                result,
                direct.estimate(u, v),
                "server mismatch at ({u}, {v})"
            );
        }
    }
    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.totals.queries, 500);

    // A corrupted snapshot must refuse to start a server at all.
    let mut bytes = std::fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    let corrupted = temp_path("serve_corrupted.dsk");
    std::fs::write(&corrupted, &bytes).unwrap();
    assert!(SketchServer::from_snapshot(&corrupted, ServeConfig::default()).is_err());

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&corrupted).ok();
}

// ---------------------------------------------------------------------------
// Scheme dispatch from the stored spec
// ---------------------------------------------------------------------------

#[test]
fn load_oracle_dispatches_on_the_stored_scheme() {
    let g = graph(64, 2);
    for (i, spec) in SchemeSpec::all_families().into_iter().enumerate() {
        let path = temp_path(&format!("dispatch_{i}.dsk"));
        let contents = build_stored(&g, spec, &config(2)).unwrap();
        save_snapshot(&path, &contents).unwrap();
        let oracle = load_oracle(&path).unwrap();
        assert_eq!(oracle.scheme_name(), spec.name(), "{spec}");
        assert_eq!(oracle.num_nodes(), 64, "{spec}");
        assert!(oracle.max_words() > 0, "{spec}");
        std::fs::remove_file(&path).ok();
    }
}
