//! Cross-crate tests for the observability subsystem: the registry's
//! counters must total exactly under concurrent recording, histogram
//! bucket boundaries must hold for arbitrary values, the Prometheus text
//! exposition must survive a hand-rolled parse back into the snapshot's
//! numbers, sampling must be exact, and the numbers served over a real
//! socket's `/metrics` endpoint must equal the queries actually sent.

use dsketch::prelude::*;
use dsketch_obs::{
    bucket_index, bucket_upper_bound, prometheus, Histogram, MetricsRegistry, Tracer, BUCKETS,
};
use dsketch_serve::{NetClient, NetConfig, NetServer, ServeConfig};
use netgraph::generators::{erdos_renyi, GeneratorConfig};
use netgraph::NodeId;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Concurrent recording through shared handles loses nothing: the final
/// totals are exactly the sum of what every thread recorded.
#[test]
fn concurrent_recording_totals_exactly() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 5_000;
    let registry = MetricsRegistry::new();
    let counter = registry.counter("dsketch_test_ops_total", "Concurrent increments.");
    let hist = registry.histogram("dsketch_test_op_latency_nanos", "Recorded values.");
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let counter = counter.clone();
        let hist = hist.clone();
        handles.push(dsketch::parallel::spawn_named(
            &format!("obs-hammer-{t}"),
            move || {
                for i in 0..PER_THREAD {
                    counter.inc();
                    hist.record(t * PER_THREAD + i);
                }
            },
        ));
    }
    for handle in handles {
        handle.join().expect("recorder thread");
    }
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("dsketch_test_ops_total", ""),
        Some(THREADS * PER_THREAD)
    );
    let hist = snap
        .histogram("dsketch_test_op_latency_nanos", "")
        .expect("histogram registered");
    assert_eq!(hist.count(), THREADS * PER_THREAD);
    // Values were 0..THREADS*PER_THREAD exactly once each: the sum is the
    // closed form, so not one observation was dropped or double-counted.
    let n = THREADS * PER_THREAD;
    assert_eq!(hist.sum, n * (n - 1) / 2);
    assert_eq!(hist.max, n - 1);
}

/// The exact 1-in-N sampling contract at the `Tracer` level: Q calls emit
/// ⌈Q/N⌉ events (the first call always samples).
#[test]
fn tracer_emits_exactly_ceil_q_over_n() {
    for (q, n, expected) in [
        (23u64, 5u64, 5usize),
        (100, 100, 1),
        (101, 100, 2),
        (6, 1, 6),
    ] {
        let tracer = Tracer::one_in(n);
        let mut emitted = 0;
        for i in 0..q {
            if tracer.sample() {
                tracer.emit(dsketch_obs::TraceEvent::new("test").num("i", i));
                emitted += 1;
            }
        }
        assert_eq!(emitted, expected, "q={q} n={n}");
        assert_eq!(
            tracer.recent(q as usize).len(),
            expected.min(256),
            "ring holds them"
        );
    }
    assert!(!Tracer::disabled().sample());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bucket placement invariants for arbitrary values: the chosen
    /// bucket's inclusive top is ≥ the value, the previous bucket's top
    /// is < the value, and recording puts exactly one observation there.
    #[test]
    fn histogram_bucket_boundaries_hold(value in 0u64..=u64::MAX) {
        let index = bucket_index(value);
        prop_assert!(index < BUCKETS);
        prop_assert!(bucket_upper_bound(index) >= value.max(1));
        if index > 0 {
            prop_assert!(bucket_upper_bound(index - 1) < value.max(1));
        }
        let hist = Histogram::new();
        hist.record(value);
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count(), 1);
        prop_assert_eq!(snap.buckets[index], 1);
        prop_assert_eq!(snap.sum, value);
        prop_assert_eq!(snap.max, value);
    }
}

/// A parsed exposition document: `# TYPE` lines plus every sample keyed by
/// its full series name (labels included).
struct ParsedExposition {
    types: BTreeMap<String, String>,
    samples: BTreeMap<String, i128>,
}

/// Hand-rolled parser for the Prometheus text format the encoder emits —
/// deliberately independent code, so the round trip actually checks the
/// output against the spec's line grammar rather than the encoder against
/// itself.
fn parse_exposition(text: &str) -> ParsedExposition {
    let mut types = BTreeMap::new();
    let mut samples = BTreeMap::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().expect("type line has a name").to_string();
            let kind = parts.next().expect("type line has a kind").to_string();
            assert!(
                types.insert(name, kind).is_none(),
                "each family has exactly one TYPE line"
            );
        } else if line.starts_with('#') {
            continue; // HELP or comment
        } else if !line.is_empty() {
            // `name 7` or `name{k="v",le="3"} 7` — the value is after the
            // last space outside braces, which for this format is simply
            // the last space on the line.
            let split = line.rfind(' ').expect("sample line has a value");
            let (series, value) = line.split_at(split);
            let value: i128 = value.trim().parse().expect("integer sample value");
            assert!(
                samples.insert(series.to_string(), value).is_none(),
                "series `{series}` appears twice"
            );
        }
    }
    ParsedExposition { types, samples }
}

/// Encode a snapshot, parse it back, and require every number to survive:
/// counter and gauge values verbatim, histogram buckets cumulative and
/// consistent with the `_sum` / `_count` lines.
#[test]
fn prometheus_encoding_round_trips_through_a_parser() {
    let registry = MetricsRegistry::new();
    registry.counter("dsketch_test_hits_total", "Hits.").add(42);
    registry
        .gauge("dsketch_test_backlog_entries", "Backlog.")
        .set(-7);
    for shard in 0..3u64 {
        let label = shard.to_string();
        let hist = registry.histogram_with(
            "dsketch_test_latency_nanos",
            "Latency.",
            &[("shard", &label)],
        );
        for value in [1, 3, 900, 70_000] {
            hist.record(value * (shard + 1));
        }
    }
    let snap = registry.snapshot();
    let parsed = parse_exposition(&prometheus::encode(&[&snap]));

    assert_eq!(
        parsed
            .types
            .get("dsketch_test_hits_total")
            .map(String::as_str),
        Some("counter")
    );
    assert_eq!(
        parsed
            .types
            .get("dsketch_test_backlog_entries")
            .map(String::as_str),
        Some("gauge")
    );
    assert_eq!(
        parsed
            .types
            .get("dsketch_test_latency_nanos")
            .map(String::as_str),
        Some("histogram")
    );
    assert_eq!(parsed.samples.get("dsketch_test_hits_total"), Some(&42));
    assert_eq!(
        parsed.samples.get("dsketch_test_backlog_entries"),
        Some(&-7)
    );

    for shard in 0..3u64 {
        let labels = format!("shard=\"{shard}\"");
        let hist = snap
            .histogram("dsketch_test_latency_nanos", &labels)
            .expect("snapshot has the series");
        assert_eq!(
            parsed
                .samples
                .get(&format!("dsketch_test_latency_nanos_sum{{{labels}}}")),
            Some(&i128::from(hist.sum))
        );
        assert_eq!(
            parsed
                .samples
                .get(&format!("dsketch_test_latency_nanos_count{{{labels}}}")),
            Some(&i128::from(hist.count()))
        );
        // Cumulative buckets: monotone, ending at the count on +Inf.
        let mut cumulative = 0i128;
        for (i, &count) in hist.buckets.iter().enumerate() {
            cumulative += i128::from(count);
            let bound = bucket_upper_bound(i);
            let le = if bound == u64::MAX {
                "+Inf".to_string()
            } else {
                bound.to_string()
            };
            let key = format!("dsketch_test_latency_nanos_bucket{{{labels},le=\"{le}\"}}");
            assert_eq!(parsed.samples.get(&key), Some(&cumulative), "{key}");
        }
        assert_eq!(
            cumulative,
            i128::from(hist.count()),
            "+Inf bucket equals count"
        );
    }
}

/// One raw HTTP GET against the server (`Connection: close` policy makes
/// read-to-EOF the whole reply).
fn http_get(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("http connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    write!(stream, "GET {path} HTTP/1.1\r\nhost: t\r\n\r\n").expect("request");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("reply");
    reply
}

/// The acceptance criterion end-to-end: drive a known number of queries
/// over a real socket, scrape `/metrics`, and require the histogram count
/// and query counters to equal the queries sent — exactly.
#[test]
fn metrics_endpoint_accounts_every_query_exactly() {
    const QUERIES: usize = 333;
    let n = 32;
    let graph = erdos_renyi(n, 0.2, GeneratorConfig::uniform(9, 1, 12));
    let outcome = SketchBuilder::new(SchemeSpec::thorup_zwick(2))
        .seed(5)
        // The parallel engine is the one that feeds the global registry's
        // build-phase instruments (and is what the serving CLIs default to).
        .engine(BuildEngine::Parallel)
        .build(&graph)
        .expect("construction");
    let oracle: Arc<dyn DistanceOracle> = Arc::from(outcome.sketches);
    let server = NetServer::start(
        oracle,
        ServeConfig::default().with_shards(2).with_trace_sample(16),
        NetConfig::default().with_workers(2),
        "127.0.0.1:0",
    )
    .expect("server start");
    let addr = server.local_addr().to_string();

    let mut client = NetClient::connect(&addr, Duration::from_secs(10)).expect("connect");
    let pairs: Vec<(NodeId, NodeId)> = (0..QUERIES)
        .map(|i| {
            (
                NodeId::from_index(i % n),
                NodeId::from_index((i * 7 + 1) % n),
            )
        })
        .collect();
    for chunk in pairs.chunks(37) {
        let results = client.query_batch(chunk).expect("batch transport");
        assert_eq!(results.len(), chunk.len());
    }
    drop(client);

    let reply = http_get(&addr, "/metrics");
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    assert!(reply.contains("text/plain; version=0.0.4"), "{reply}");
    let body = reply.split("\r\n\r\n").nth(1).expect("reply has a body");
    let parsed = parse_exposition(body);

    // Build-side families (global registry) and serve/net families (the
    // server's own registry) are all present in one document.
    for family in [
        "dsketch_build_phase_nanos",
        "dsketch_serve_queries_total",
        "dsketch_serve_cache_hits_total",
        "dsketch_serve_query_latency_nanos",
        "dsketch_net_frames_in_total",
        "dsketch_net_connections_accepted_total",
    ] {
        assert!(
            parsed.types.contains_key(family),
            "family `{family}` missing"
        );
    }

    // Exactness: per-shard query counters and latency histogram counts
    // both total the queries sent (the /metrics request itself is HTTP and
    // routes no queries).
    let queries_total: i128 = parsed
        .samples
        .iter()
        .filter(|(k, _)| k.starts_with("dsketch_serve_queries_total{"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(queries_total, QUERIES as i128);
    let latency_count: i128 = parsed
        .samples
        .iter()
        .filter(|(k, _)| k.starts_with("dsketch_serve_query_latency_nanos_count{"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(latency_count, QUERIES as i128);

    // A second scrape is monotone in the counters.
    let reply2 = http_get(&addr, "/metrics");
    let body2 = reply2.split("\r\n\r\n").nth(1).expect("second body");
    let parsed2 = parse_exposition(body2);
    for (series, value) in &parsed.samples {
        if series.starts_with("dsketch_serve_queries_total{")
            || series.starts_with("dsketch_net_frames_in_total")
        {
            let later = parsed2.samples.get(series).expect("series persists");
            assert!(later >= value, "{series} went backwards: {later} < {value}");
        }
    }

    // The sampled trace ring served over HTTP carries real query events.
    let trace = http_get(&addr, "/trace?n=8");
    assert!(trace.starts_with("HTTP/1.1 200"), "{trace}");
    assert!(trace.contains("\"event\":\"query\""), "{trace}");

    let stats = server.shutdown();
    assert_eq!(stats.serve.totals.queries, QUERIES as u64, "{stats}");
}
