//! Hot snapshot swap under fire: the serving stack must publish new
//! generations mid-traffic without a single wrong, torn, or failed
//! answer.
//!
//! Three batteries, mirroring the swap design's obligations:
//!
//! * **Swap-under-fire** — client threads hammer single, batch, and HTTP
//!   queries while the main thread alternates two swap-compatible
//!   snapshots through the live server.  Every tagged answer must be
//!   exactly correct for the generation that served it, with zero errors
//!   and exact swap/invalidation accounting in `ServeStats`.
//! * **Cell linearizability** — interleaved `load`/`store` traffic on the
//!   bare [`SwapCell`] never double-frees, never yields a generation
//!   outside the window that was live during the call, and drops every
//!   retired payload exactly once (drop-counter oracle + strong-count
//!   probes).
//! * **Negative paths** — corrupted bytes, wrong node count, and wrong
//!   scheme are refused with the right typed [`SwapError`], leaving the
//!   live generation answering untouched; a server shut down moments
//!   after a swap drains cleanly.

use dsketch::prelude::*;
use dsketch_serve::{Generation, ServeConfig, SketchServer, SwapCell, SwapError};
use netgraph::generators::{erdos_renyi, GeneratorConfig};
use netgraph::NodeId;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dsketch_swap_stress_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Build two swap-compatible snapshots (same graph, same scheme,
/// different construction seeds — so answers genuinely differ between
/// generations) plus their offline oracles for ground truth.
#[allow(clippy::type_complexity)]
fn two_snapshots(
    n: usize,
    tag: &str,
) -> (
    PathBuf,
    PathBuf,
    Arc<dyn DistanceOracle>,
    Arc<dyn DistanceOracle>,
) {
    let graph = erdos_renyi(n, 0.15, GeneratorConfig::uniform(7, 1, 20));
    let spec = SchemeSpec::thorup_zwick(2);
    let snap_a = temp_path(&format!("{tag}_a.dsk"));
    let snap_b = temp_path(&format!("{tag}_b.dsk"));
    for (seed, path) in [(11u64, &snap_a), (23, &snap_b)] {
        dsketch_store::build_and_save(
            &graph,
            spec,
            &SchemeConfig::default()
                .with_seed(seed)
                .with_parallel_build(),
            path,
        )
        .expect("snapshot build");
    }
    let oracle_a: Arc<dyn DistanceOracle> =
        Arc::from(dsketch_store::load_frozen_oracle(&snap_a).expect("load a"));
    let oracle_b: Arc<dyn DistanceOracle> =
        Arc::from(dsketch_store::load_frozen_oracle(&snap_b).expect("load b"));
    (snap_a, snap_b, oracle_a, oracle_b)
}

/// The oracle ground truth for a generation number: the server starts at
/// generation 1 on snapshot A; every swap alternates B, A, B, …
fn oracle_for<'a>(
    generation: u64,
    a: &'a Arc<dyn DistanceOracle>,
    b: &'a Arc<dyn DistanceOracle>,
) -> &'a Arc<dyn DistanceOracle> {
    if generation % 2 == 1 {
        a
    } else {
        b
    }
}

/// Check one tagged answer against the serving generation's offline
/// oracle.  Wrong answers and transport-visible failures both fail the
/// swap-under-fire guarantee.
fn check_tagged(
    result: &Result<u64, dsketch::SketchError>,
    generation: u64,
    u: NodeId,
    v: NodeId,
    a: &Arc<dyn DistanceOracle>,
    b: &Arc<dyn DistanceOracle>,
) {
    let expected = oracle_for(generation, a, b).estimate(u, v);
    match (result, &expected) {
        (Ok(got), Ok(want)) => assert_eq!(
            got, want,
            "generation {generation} answered d({u:?},{v:?}) wrong"
        ),
        (Err(_), Err(_)) => {}
        _ => panic!("generation {generation} at ({u:?},{v:?}): got {result:?}, want {expected:?}"),
    }
}

/// The tentpole acceptance test: N threads of single + batch queries
/// while M swaps publish alternating snapshots.  Every answer must be
/// exactly correct for the generation that served it; zero errors; exact
/// swap accounting; and no reader may ever have blocked on a publish
/// (bounded worst-case latency during the swap storm).
#[test]
fn swap_under_fire_every_answer_matches_its_serving_generation() {
    const THREADS: usize = 3;
    const SWAPS: u64 = 8;
    let n = 48;
    let (snap_a, snap_b, oracle_a, oracle_b) = two_snapshots(n, "under_fire");
    let server = SketchServer::from_snapshot(
        &snap_a,
        ServeConfig::default()
            .with_shards(2)
            .with_cache_capacity(64),
    )
    .expect("cold start");
    assert_eq!(server.generation(), 1);

    let stop = AtomicBool::new(false);
    let answered = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for thread_id in 0..THREADS {
            let client = server.client();
            let (a, b) = (Arc::clone(&oracle_a), Arc::clone(&oracle_b));
            let (stop, answered) = (&stop, &answered);
            scope.spawn(move || {
                let mut i = thread_id as u64;
                loop {
                    let pairs: Vec<_> = (0..16)
                        .map(|j| {
                            let x = (i + j) * 7919 % n as u64;
                            let y = (i + j) * 104729 % n as u64;
                            (NodeId(x as u32), NodeId(y as u32))
                        })
                        .collect();
                    if thread_id == 0 {
                        // Single-query path.
                        for &(u, v) in &pairs {
                            let (result, generation) = client.query_tagged(u, v);
                            check_tagged(&result, generation, u, v, &a, &b);
                            answered.fetch_add(1, Ordering::Relaxed);
                        }
                    } else {
                        // Batch path.
                        for ((result, generation), &(u, v)) in
                            client.query_batch_tagged(&pairs).into_iter().zip(&pairs)
                        {
                            check_tagged(&result, generation, u, v, &a, &b);
                            answered.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    i += 16;
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                }
            });
        }
        for round in 0..SWAPS {
            let next = if round % 2 == 0 { &snap_b } else { &snap_a };
            let generation = server.swap_snapshot(next).expect("compatible snapshot");
            assert_eq!(generation, round + 2, "generations advance without gaps");
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });

    let latency = server
        .registry()
        .snapshot()
        .histogram_total("dsketch_serve_query_latency_nanos");
    let stats = server.shutdown();
    assert_eq!(stats.generation, SWAPS + 1);
    assert_eq!(stats.swaps, SWAPS);
    assert_eq!(stats.totals.errors, 0, "no query may fail during swaps");
    assert!(answered.load(Ordering::Relaxed) > 0);
    assert_eq!(stats.totals.queries, answered.load(Ordering::Relaxed));
    assert_eq!(
        stats.totals.cache_hits + stats.totals.cache_misses,
        stats.totals.queries,
        "lazy invalidation preserves hit/miss accounting"
    );
    // A reader that blocked on a publish would stall for the whole swap
    // (milliseconds to seconds); per-query service time stays far below
    // that even at p99.9 under the swap storm.  100ms is orders of
    // magnitude above a cache-miss estimate and still catches blocking.
    assert!(
        latency.quantile(0.999) < 100_000_000,
        "readers must never block on a swap (p99.9 = {} ns)",
        latency.quantile(0.999)
    );

    std::fs::remove_file(&snap_a).ok();
    std::fs::remove_file(&snap_b).ok();
}

/// HTTP front end under the same fire: `GET /distance` keeps answering
/// while `POST /swap` publishes; the stats document tracks the
/// generation.
#[test]
fn http_queries_and_swaps_interleave_cleanly() {
    use dsketch_serve::{NetConfig, NetServer};
    let n = 32;
    let (snap_a, snap_b, oracle_a, oracle_b) = two_snapshots(n, "http_fire");
    let oracle: Arc<dyn DistanceOracle> =
        Arc::from(dsketch_store::load_frozen_oracle(&snap_a).expect("load a"));
    let (spec, fingerprint) = dsketch_store::peek_snapshot_meta(&snap_a).expect("peek");
    let server = NetServer::start_with_origin(
        oracle,
        ServeConfig::default().with_shards(2),
        NetConfig::default().with_workers(2),
        "127.0.0.1:0",
        dsketch_serve::ServeMeta::new(spec.to_string(), fingerprint.to_string()),
        Some((spec, fingerprint)),
    )
    .expect("listen");
    let addr = server.local_addr().to_string();

    let http = |request: String| -> String {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        stream.write_all(request.as_bytes()).expect("request");
        let mut reply = String::new();
        stream.read_to_string(&mut reply).expect("reply");
        reply
    };
    let get = |path: &str| http(format!("GET {path} HTTP/1.1\r\nhost: t\r\n\r\n"));
    let swap = |path: &Path| {
        http(format!(
            "POST /swap?snapshot={} HTTP/1.1\r\nhost: t\r\n\r\n",
            path.display().to_string().replace('/', "%2F")
        ))
    };

    // Warm answers from generation 1 (snapshot A).
    let pairs: Vec<_> = (0..6u32).map(|i| (i, (i * 5 + 1) % n as u32)).collect();
    for &(u, v) in &pairs {
        let reply = get(&format!("/distance?u={u}&v={v}"));
        match oracle_a.estimate(NodeId(u), NodeId(v)) {
            Ok(d) => assert!(reply.contains(&format!("\"distance\":{d}")), "{reply}"),
            Err(_) => assert!(reply.contains("\"error\""), "{reply}"),
        }
    }

    // Queries racing the swap must answer from *some* live generation.
    std::thread::scope(|scope| {
        let (oracle_a, oracle_b) = (&oracle_a, &oracle_b);
        let get = &get;
        scope.spawn(move || {
            for &(u, v) in &pairs {
                let reply = get(&format!("/distance?u={u}&v={v}"));
                let ok_for = |oracle: &Arc<dyn DistanceOracle>| match oracle
                    .estimate(NodeId(u), NodeId(v))
                {
                    Ok(d) => reply.contains(&format!("\"distance\":{d}")),
                    Err(_) => reply.contains("\"error\""),
                };
                assert!(
                    ok_for(oracle_a) || ok_for(oracle_b),
                    "answer matches neither live generation: {reply}"
                );
            }
        });
        let reply = swap(&snap_b);
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        assert!(reply.contains("\"generation\":2"), "{reply}");
    });

    // Post-swap: generation 2 serves snapshot B's answers, stats agree.
    for &(u, v) in &[(0u32, 5u32), (1, 9)] {
        let reply = get(&format!("/distance?u={u}&v={v}"));
        match oracle_b.estimate(NodeId(u), NodeId(v)) {
            Ok(d) => assert!(reply.contains(&format!("\"distance\":{d}")), "{reply}"),
            Err(_) => assert!(reply.contains("\"error\""), "{reply}"),
        }
    }
    let stats = get("/stats");
    assert!(stats.contains("\"generation\":2"), "{stats}");
    assert!(stats.contains("\"swaps\":1"), "{stats}");
    let metrics = get("/metrics");
    assert!(metrics.contains("dsketch_serve_generation 2"), "{metrics}");
    assert!(metrics.contains("dsketch_swap_total 1"), "{metrics}");

    // A swap refusal over HTTP is a 409 with the typed error name, and
    // the live generation stays put.
    let refused = swap(Path::new("/nonexistent/missing.dsk"));
    assert!(refused.starts_with("HTTP/1.1 409"), "{refused}");
    assert!(refused.contains("swap-refused"), "{refused}");
    assert!(get("/stats").contains("\"generation\":2"));

    server.shutdown();
    std::fs::remove_file(&snap_a).ok();
    std::fs::remove_file(&snap_b).ok();
}

/// A payload that counts its drops — the oracle for exactly-once
/// retirement.  `live` goes negative on a double-free (the drop glue
/// would usually also crash, but the counter makes the failure crisp).
struct Tracked {
    id: u64,
    drops: Arc<AtomicU64>,
    live: Arc<AtomicI64>,
}

impl Drop for Tracked {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
        let was = self.live.fetch_sub(1, Ordering::SeqCst);
        assert!(was > 0, "payload {} dropped more than once", self.id);
    }
}

/// Drive `readers` threads of loads against one writer doing `stores`
/// publishes, then assert the exactly-once drop discipline and the
/// freshness window: every load returns a generation that was current
/// at some instant during the call.
fn drive_cell(readers: usize, stores: u64, holds: usize) {
    let drops = Arc::new(AtomicU64::new(0));
    let live = Arc::new(AtomicI64::new(0));
    let make = |id: u64| {
        live.fetch_add(1, Ordering::SeqCst);
        Arc::new(Tracked {
            id,
            drops: Arc::clone(&drops),
            live: Arc::clone(&live),
        })
    };
    let total = stores + 1;
    {
        let cell = Arc::new(SwapCell::new(make(1)));
        std::thread::scope(|scope| {
            for _ in 0..readers {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    let mut held = std::collections::VecDeque::new();
                    let mut last = 0u64;
                    loop {
                        let before = cell.version();
                        let value = cell.load();
                        let after = cell.version();
                        assert!(
                            value.id >= before && value.id <= after,
                            "load yielded generation {} outside its live window [{before}, {after}]",
                            value.id
                        );
                        assert!(value.id >= last, "per-thread loads are monotonic");
                        last = value.id;
                        // Hold a sliding window of clones so retirement
                        // overlaps with live readers.
                        held.push_back(value);
                        if held.len() > holds {
                            held.pop_front();
                        }
                        if last >= total {
                            return;
                        }
                    }
                });
            }
            for id in 2..=total {
                cell.store(make(id));
            }
        });
        // All readers done; the cell still owns up to SLOTS recent
        // generations, so nothing can have dropped total times yet.
        assert!(drops.load(Ordering::SeqCst) < total);
        assert!(live.load(Ordering::SeqCst) > 0);
    }
    // Cell gone: every payload dropped exactly once, none resurrected.
    assert_eq!(drops.load(Ordering::SeqCst), total);
    assert_eq!(live.load(Ordering::SeqCst), 0);
}

#[test]
fn eight_reader_threads_and_a_writer_never_double_free() {
    drive_cell(8, 300, 4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized interleavings: vary reader count, store count, and the
    /// clone-hold window.  The drop-counter oracle and the freshness
    /// window hold for every schedule.
    #[test]
    fn cell_interleavings_preserve_exactly_once_retirement(
        readers in 1usize..6,
        stores in 1u64..80,
        holds in 1usize..6,
    ) {
        drive_cell(readers, stores, holds);
    }
}

/// Retired generations stay alive while reader clones hold them:
/// `Arc::strong_count` proves the cell and the clone share ownership,
/// and the clone's release is the payload's single drop.
#[test]
fn strong_counts_track_cell_and_reader_ownership() {
    let first = Arc::new(7u64);
    let cell = SwapCell::new(Arc::clone(&first));
    // One count here, one in the cell's slot.
    assert_eq!(Arc::strong_count(&first), 2);
    let pinned = cell.load();
    assert_eq!(Arc::strong_count(&first), 3);
    // Retire generation 1 far enough that its slot is recycled.
    for id in 8..8 + 4u64 {
        cell.store(Arc::new(id));
    }
    // The cell released its slot reference; ours and `pinned` remain.
    assert_eq!(Arc::strong_count(&first), 2);
    assert_eq!(*pinned, 7);
    drop(pinned);
    assert_eq!(Arc::strong_count(&first), 1);
}

/// Negative paths: every refusal is the right typed error, and the live
/// generation keeps answering as if nothing happened.
#[test]
fn refused_swaps_leave_the_live_generation_untouched() {
    let n = 48;
    let (snap_a, snap_b, oracle_a, _oracle_b) = two_snapshots(n, "negative");
    let server = SketchServer::from_snapshot(&snap_a, ServeConfig::default().with_shards(2))
        .expect("cold start");
    let assert_still_generation_one = |label: &str| {
        assert_eq!(server.generation(), 1, "{label} must not publish");
        let client = server.client();
        for &(u, v) in &[(0u32, 7u32), (3, 19), (12, 40)] {
            let (u, v) = (NodeId(u), NodeId(v));
            let (result, generation) = client.query_tagged(u, v);
            assert_eq!(generation, 1, "{label}");
            assert_eq!(result.ok(), oracle_a.estimate(u, v).ok(), "{label}");
        }
    };

    // Corrupted DSK1: flip a payload byte — the deep verifier refuses.
    let corrupt = temp_path("negative_corrupt.dsk");
    let mut bytes = std::fs::read(&snap_b).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&corrupt, &bytes).unwrap();
    match server.swap_snapshot(&corrupt) {
        Err(SwapError::Verify(_)) => {}
        other => panic!("corrupted snapshot must fail verification, got {other:?}"),
    }
    assert_still_generation_one("corrupted snapshot");

    // Unreadable path: a typed store error, not a panic.
    match server.swap_snapshot(temp_path("negative_missing.dsk")) {
        Err(SwapError::Store(_)) => {}
        other => panic!("missing snapshot must be a store error, got {other:?}"),
    }
    assert_still_generation_one("missing snapshot");

    // Mismatched node count (a different graph — the fingerprint names a
    // different node-id universe).
    let other_graph = erdos_renyi(n + 1, 0.15, GeneratorConfig::uniform(7, 1, 20));
    let wrong_n = temp_path("negative_wrong_n.dsk");
    dsketch_store::build_and_save(
        &other_graph,
        SchemeSpec::thorup_zwick(2),
        &SchemeConfig::default().with_seed(11).with_parallel_build(),
        &wrong_n,
    )
    .unwrap();
    match server.swap_snapshot(&wrong_n) {
        Err(SwapError::NodeCountMismatch { current, offered }) => {
            assert_eq!(current, n);
            assert_eq!(offered, n + 1);
        }
        other => panic!("wrong node count must be refused, got {other:?}"),
    }
    assert_still_generation_one("mismatched node count");

    // Mismatched scheme on the *same* graph.
    let graph = erdos_renyi(n, 0.15, GeneratorConfig::uniform(7, 1, 20));
    let wrong_scheme = temp_path("negative_wrong_scheme.dsk");
    dsketch_store::build_and_save(
        &graph,
        SchemeSpec::three_stretch(0.4),
        &SchemeConfig::default().with_seed(11).with_parallel_build(),
        &wrong_scheme,
    )
    .unwrap();
    match server.swap_snapshot(&wrong_scheme) {
        Err(SwapError::SchemeMismatch { current, offered }) => {
            assert_eq!(current, SchemeSpec::thorup_zwick(2));
            assert_eq!(offered, SchemeSpec::three_stretch(0.4));
        }
        other => panic!("wrong scheme must be refused, got {other:?}"),
    }
    assert_still_generation_one("mismatched scheme");

    // After all the refusals, a compatible snapshot still swaps in fine.
    assert_eq!(server.swap_snapshot(&snap_b).expect("compatible"), 2);
    assert_eq!(server.generation(), 2);

    let stats = server.shutdown();
    assert_eq!(stats.swaps, 1, "only the successful publish counts");
    for path in [&snap_a, &snap_b, &corrupt, &wrong_n, &wrong_scheme] {
        std::fs::remove_file(path).ok();
    }
}

/// Shutdown moments after a swap, with clients still in flight inside a
/// scope: the server drains cleanly and the final stats carry the swap.
#[test]
fn mid_swap_shutdown_drains_cleanly() {
    let n = 32;
    let (snap_a, snap_b, oracle_a, oracle_b) = two_snapshots(n, "shutdown");
    let server = SketchServer::from_snapshot(&snap_a, ServeConfig::default().with_shards(2))
        .expect("cold start");
    std::thread::scope(|scope| {
        for t in 0..2u32 {
            let client = server.client();
            let (a, b) = (Arc::clone(&oracle_a), Arc::clone(&oracle_b));
            scope.spawn(move || {
                for i in 0..200u32 {
                    let (u, v) = (NodeId((i + t) % n as u32), NodeId((i * 3 + 1) % n as u32));
                    let (result, generation) = client.query_tagged(u, v);
                    check_tagged(&result, generation, u, v, &a, &b);
                }
            });
        }
        // Publish while those queries are in flight.
        server.swap_snapshot(&snap_b).expect("compatible snapshot");
    });
    let stats = server.shutdown();
    assert_eq!(stats.generation, 2);
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.totals.errors, 0);
    assert_eq!(stats.totals.queries, 400);
    std::fs::remove_file(&snap_a).ok();
    std::fs::remove_file(&snap_b).ok();
}

/// Satellite 4's exactness check: with one shard and a roomy cache, the
/// per-shard `cache_invalidations` counter (and the hit/miss split)
/// across one swap is predictable to the query.
#[test]
fn cache_invalidation_accounting_is_exact_across_one_swap() {
    let n = 48;
    let (snap_a, snap_b, oracle_a, oracle_b) = two_snapshots(n, "accounting");
    // Pairs that answer Ok under both generations (only Ok answers are
    // cached, so errors would skew the arithmetic).
    let pairs: Vec<_> = (0..n as u32)
        .map(|i| (NodeId(i), NodeId((i + 1) % n as u32)))
        .filter(|&(u, v)| oracle_a.estimate(u, v).is_ok() && oracle_b.estimate(u, v).is_ok())
        .take(10)
        .collect();
    assert_eq!(pairs.len(), 10, "graph too sparse for the fixture");

    let server = SketchServer::from_snapshot(
        &snap_a,
        ServeConfig::default()
            .with_shards(1)
            .with_cache_capacity(1024),
    )
    .expect("cold start");
    let client = server.client();
    let run_all_twice = || {
        for _ in 0..2 {
            for &(u, v) in &pairs {
                client.query(u, v).expect("fixture pairs answer Ok");
            }
        }
    };

    // Generation 1: 10 cold misses, then 10 hits.
    run_all_twice();
    let stats = server.stats();
    assert_eq!(stats.totals.queries, 20);
    assert_eq!(stats.totals.cache_misses, 10);
    assert_eq!(stats.totals.cache_hits, 10);
    assert_eq!(stats.totals.cache_invalidations, 0);

    // One swap: every cached entry is now stale, invalidated lazily on
    // its next touch — 10 invalidations that are *also* misses, then 10
    // fresh hits.  No flush, no pause.
    server.swap_snapshot(&snap_b).expect("compatible snapshot");
    run_all_twice();
    let stats = server.stats();
    assert_eq!(stats.totals.queries, 40);
    assert_eq!(stats.totals.cache_misses, 20);
    assert_eq!(stats.totals.cache_hits, 20);
    assert_eq!(stats.totals.cache_invalidations, 10);
    assert_eq!(stats.generation, 2);
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.per_shard[0].cache_invalidations, 10);

    drop(client);
    server.shutdown();
    std::fs::remove_file(&snap_a).ok();
    std::fs::remove_file(&snap_b).ok();
}

/// The `Generation` type itself: `initial` starts at 1 and carries the
/// provenance the swap gates check.
#[test]
fn generation_initial_carries_provenance() {
    let (snap_a, _snap_b, oracle_a, _) = two_snapshots(24, "generation");
    let (spec, fingerprint) = dsketch_store::peek_snapshot_meta(&snap_a).expect("peek");
    let generation = Generation::initial(Arc::clone(&oracle_a), Some(spec), Some(fingerprint));
    assert_eq!(generation.number, 1);
    assert_eq!(generation.spec, Some(spec));
    assert_eq!(generation.fingerprint, Some(fingerprint));
    assert_eq!(generation.oracle.num_nodes(), 24);
}
