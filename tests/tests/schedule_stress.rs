//! Deterministic schedule-stress harness: hammer the workspace's two
//! concurrency surfaces — `dsketch::parallel` and the sharded
//! `SketchServer` — with seeded workloads designed to shuffle thread
//! interleavings, and assert the results are bit-identical to the
//! sequential oracle every time.
//!
//! The point is not to *prove* the absence of races (the gated `tsan` CI
//! job aims the real detector at these same tests); it is to make
//! schedule-dependence **observable**: every assertion here compares a
//! concurrent execution against a deterministic reference, so any unsynced
//! mutation, lost batch, or cross-wired reply channel shows up as a value
//! mismatch under `cargo test` on any machine, no sanitizer required.
//!
//! All workloads are seeded (a splitmix-style generator below) — a failure
//! reproduces from the printed round/seed alone.

use dsketch::parallel::{parallel_map, parallel_map_with, spawn_named};
use dsketch::prelude::*;
use dsketch_serve::{ServeConfig, SketchServer};
use netgraph::generators::{erdos_renyi, GeneratorConfig};
use netgraph::{Distance, Graph, NodeId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// SplitMix64: a tiny seeded generator, so every stress round is
/// reproducible from its seed alone.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Burn a schedule-dependent amount of CPU (without sleeping) so items
/// finish out of order and workers steal across rounds.
fn jitter(fuel: u64) -> u64 {
    let mut acc = fuel | 1;
    for _ in 0..(fuel % 257) {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
    }
    acc
}

// ---------------------------------------------------------------------------
// parallel_map: same bits for every thread count, under skewed loads
// ---------------------------------------------------------------------------

#[test]
fn parallel_map_is_schedule_independent_under_skewed_load() {
    let mut seed = 0xD15_7A4CE;
    for round in 0..8 {
        let n = 64 + (splitmix(&mut seed) % 192) as usize;
        let items: Vec<u64> = (0..n).map(|_| splitmix(&mut seed)).collect();
        // Reference: the sequential execution.
        let expected: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, &x)| jitter(x).wrapping_add(i as u64))
            .collect();
        for threads in [2, 3, 4, 8, 16] {
            let got = parallel_map(threads, &items, |i, &x| jitter(x).wrapping_add(i as u64));
            assert_eq!(got, expected, "round {round}, {threads} threads");
        }
    }
}

#[test]
fn worker_scratch_state_cannot_leak_between_items() {
    // Each worker's scratch remembers the previous item it processed; the
    // per-item result must depend only on (index, item).  If scratch state
    // leaked into results, different schedules would produce different
    // outputs — and the equality against the sequential pass would fail.
    let items: Vec<u64> = (0..512).collect();
    let expected: Vec<u64> = items.iter().map(|&x| x * 7 + 1).collect();
    let inits = AtomicUsize::new(0);
    for threads in [2, 4, 8] {
        let got = parallel_map_with(
            threads,
            &items,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<u64>::new()
            },
            |scratch, _, &x| {
                scratch.push(x); // poison for the *next* item, if shared
                x * 7 + 1
            },
        );
        assert_eq!(got, expected, "{threads} threads");
    }
    // Scratch was created per worker, not per item (amortization contract)
    // and not shared (each init is a distinct Vec).
    assert!(inits.load(Ordering::Relaxed) <= 2 + 4 + 8);
}

// ---------------------------------------------------------------------------
// SketchServer: concurrent clients against the direct-oracle reference
// ---------------------------------------------------------------------------

fn graph(n: usize, seed: u64) -> Graph {
    erdos_renyi(n, 8.0 / n as f64, GeneratorConfig::uniform(seed, 1, 50))
}

fn build_oracle(n: usize, seed: u64) -> TzSketchSet {
    ThorupZwickScheme::new(2)
        .build(&graph(n, seed), &SchemeConfig::default().with_seed(seed))
        .unwrap()
        .sketches
}

/// Seeded query batches for one client thread.
fn client_batches(n: usize, seed: u64, batches: usize, batch: usize) -> Vec<Vec<(NodeId, NodeId)>> {
    let mut state = seed;
    (0..batches)
        .map(|_| {
            (0..batch)
                .map(|_| {
                    (
                        NodeId((splitmix(&mut state) % n as u64) as u32),
                        NodeId((splitmix(&mut state) % n as u64) as u32),
                    )
                })
                .collect()
        })
        .collect()
}

fn reference_answers(
    oracle: &dyn DistanceOracle,
    batches: &[Vec<(NodeId, NodeId)>],
) -> Vec<Option<Distance>> {
    batches
        .iter()
        .flatten()
        .map(|&(u, v)| oracle.estimate(u, v).ok())
        .collect()
}

/// The core stress: `clients` threads share one server, each replaying its
/// own seeded batches; every reply must equal the direct oracle's answer
/// for that client's own queries (a cross-wired reply channel or a
/// corrupted cache entry surfaces as a mismatch).
fn stress_server(
    oracle: Arc<dyn DistanceOracle>,
    config: ServeConfig,
    clients: usize,
    label: &str,
) {
    let n = oracle.num_nodes();
    let server = SketchServer::start(Arc::clone(&oracle), config).unwrap();
    let workloads: Vec<_> = (0..clients)
        .map(|c| client_batches(n, 0xC0FFEE + c as u64, 12, 32))
        .collect();

    let handles: Vec<_> = workloads
        .iter()
        .enumerate()
        .map(|(c, batches)| {
            let client = server.client();
            let batches = batches.clone();
            spawn_named(&format!("stress-client-{c}"), move || {
                let mut answers = Vec::new();
                for batch in &batches {
                    for result in client.query_batch(batch) {
                        answers.push(result.ok());
                    }
                }
                answers
            })
        })
        .collect();

    let answers: Vec<Vec<Option<Distance>>> = handles
        .into_iter()
        .map(|h| h.join().expect("stress client panicked"))
        .collect();
    let stats = server.shutdown();

    let mut total = 0u64;
    for (c, (got, batches)) in answers.iter().zip(&workloads).enumerate() {
        let expected = reference_answers(oracle.as_ref(), batches);
        assert_eq!(got, &expected, "{label}: client {c} got wrong answers");
        total += expected.len() as u64;
    }
    // Every query was counted exactly once — no lost or duplicated batches.
    assert_eq!(stats.totals.queries, total, "{label}: query count drifted");
    assert_eq!(stats.totals.errors, 0, "{label}: unexpected query errors");
}

#[test]
fn concurrent_clients_match_the_direct_oracle() {
    let oracle: Arc<dyn DistanceOracle> = Arc::new(build_oracle(96, 21));
    // Sweep the contention space: queue_depth = 1 maximizes backpressure
    // (clients block on full shard queues — the tightest interleaving),
    // cache off vs. tiny cache exercises the hit/miss races.
    for (shards, queue_depth, cache) in [(1, 1, 0), (2, 1, 16), (4, 1, 0), (4, 4, 64), (8, 2, 1)] {
        let config = ServeConfig::default()
            .with_shards(shards)
            .with_queue_depth(queue_depth)
            .with_cache_capacity(cache);
        stress_server(
            Arc::clone(&oracle),
            config,
            6,
            &format!("shards={shards} depth={queue_depth} cache={cache}"),
        );
    }
}

#[test]
fn frozen_and_map_backed_servers_agree_under_contention() {
    let built = build_oracle(96, 33);
    let frozen: Arc<dyn DistanceOracle> = Arc::new(built.freeze());
    let map_backed: Arc<dyn DistanceOracle> = Arc::new(built);

    // Same seeded workload against both representations, max contention.
    let config = ServeConfig::default()
        .with_shards(3)
        .with_queue_depth(1)
        .with_cache_capacity(8);
    stress_server(Arc::clone(&map_backed), config, 4, "map-backed");
    stress_server(Arc::clone(&frozen), config, 4, "frozen");

    // And the two reference oracles answer identically, so the two stress
    // runs above pinned the same ground truth.
    let n = map_backed.num_nodes();
    let mut state = 0xFEED;
    for _ in 0..2_000 {
        let u = NodeId((splitmix(&mut state) % n as u64) as u32);
        let v = NodeId((splitmix(&mut state) % n as u64) as u32);
        assert_eq!(
            map_backed.estimate(u, v).ok(),
            frozen.estimate(u, v).ok(),
            "representations disagree at ({u}, {v})"
        );
    }
}

#[test]
fn repeated_rounds_are_reproducible() {
    // The whole harness is seeded: two identical rounds produce identical
    // answer vectors, so a failure elsewhere reproduces deterministically.
    let oracle: Arc<dyn DistanceOracle> = Arc::new(build_oracle(64, 5));
    let batches = client_batches(64, 99, 6, 16);
    let run = || {
        let server = SketchServer::start(
            Arc::clone(&oracle),
            ServeConfig::default().with_shards(2).with_queue_depth(1),
        )
        .unwrap();
        let client = server.client();
        let answers: Vec<Option<Distance>> = batches
            .iter()
            .flat_map(|batch| client.query_batch(batch))
            .map(Result::ok)
            .collect();
        drop(client);
        server.shutdown();
        answers
    };
    assert_eq!(run(), run());
}
