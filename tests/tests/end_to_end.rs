//! Cross-crate integration tests: the full pipeline from topology generation
//! through the CONGEST simulation to sketch queries, exercised end-to-end on
//! every workload family through the unified scheme API.

use dsketch::prelude::*;
use dsketch::query::estimate_distance_best_common;
use netgraph::apsp::DistanceTable;
use netgraph::diameter::diameters;
use netgraph::generators::{
    balanced_tree, erdos_renyi, grid, preferential_attachment, random_geometric, ring, waxman,
    GeneratorConfig,
};
use netgraph::Graph;

/// All workload families at small sizes, every one connected and weighted.
fn workload_suite() -> Vec<(&'static str, Graph)> {
    vec![
        (
            "erdos_renyi",
            erdos_renyi(72, 0.1, GeneratorConfig::uniform(3, 1, 25)),
        ),
        ("grid", grid(8, 8, GeneratorConfig::uniform(4, 1, 10))),
        ("ring", ring(48, GeneratorConfig::uniform(5, 1, 7))),
        (
            "power_law",
            preferential_attachment(64, 2, GeneratorConfig::uniform(6, 1, 40)),
        ),
        (
            "geometric",
            random_geometric(64, 0.25, GeneratorConfig::unit(7)),
        ),
        ("waxman", waxman(64, 0.4, 0.3, GeneratorConfig::unit(8))),
        (
            "tree",
            balanced_tree(63, 2, GeneratorConfig::uniform(9, 1, 12)),
        ),
    ]
}

#[test]
fn tz_stretch_guarantee_holds_on_every_family() {
    for (name, graph) in workload_suite() {
        let k = 3;
        let result = ThorupZwickScheme::new(k)
            .build(&graph, &SchemeConfig::default().with_seed(11))
            .unwrap();
        let table = DistanceTable::exact(&graph);
        let bound = (2 * k - 1) as u64;
        assert_eq!(result.sketches.stretch_bound(), Some(bound));
        for (u, v, exact) in table.pairs() {
            let est = result.sketches.estimate(u, v).unwrap();
            assert!(est >= exact, "[{name}] underestimate for ({u},{v})");
            assert!(
                est <= bound * exact,
                "[{name}] stretch violated for ({u},{v}): {est} vs {exact}"
            );
        }
    }
}

#[test]
fn distributed_equals_centralized_on_every_family() {
    for (name, graph) in workload_suite() {
        let (h, _) = Hierarchy::sample_until_top_nonempty(
            graph.num_nodes(),
            &TzParams::new(3).with_seed(23),
            500,
        )
        .unwrap();
        let centralized = CentralizedTz::build(&graph, &h);
        let scheme = ThorupZwickScheme::new(3);
        let oracle = scheme
            .build_with_hierarchy(&graph, h.clone(), &SchemeConfig::default())
            .unwrap();
        let td = scheme
            .build_with_hierarchy(
                &graph,
                h,
                &SchemeConfig::default().with_termination_detection(),
            )
            .unwrap();
        for u in graph.nodes() {
            assert_eq!(
                centralized.sketches.sketch(u),
                oracle.sketches.sketch(u),
                "[{name}] oracle-mode mismatch at {u}"
            );
            assert_eq!(
                centralized.sketches.sketch(u),
                td.sketches.sketch(u),
                "[{name}] termination-detection mismatch at {u}"
            );
        }
    }
}

#[test]
fn construction_rounds_exceed_shortest_path_diameter_only_moderately() {
    // Sanity check of the S-dependence: the distributed construction can't
    // finish faster than information can travel (≈ S rounds for the farthest
    // cluster), and on these small graphs it stays within a polylog-ish
    // factor of the Theorem 3.8 bound.
    for (name, graph) in workload_suite() {
        let d = diameters(&graph);
        let result = ThorupZwickScheme::new(2)
            .build(&graph, &SchemeConfig::default().with_seed(3))
            .unwrap();
        let n = graph.num_nodes() as f64;
        let upper = (2.0 * n.sqrt() * d.shortest_path_diameter as f64 * n.log2()).max(64.0);
        assert!(
            (result.stats.rounds as f64) < upper,
            "[{name}] rounds {} above the Theorem 3.8 ballpark {upper}",
            result.stats.rounds
        );
    }
}

#[test]
fn best_common_query_always_at_least_as_good_as_level_walk() {
    let graph = erdos_renyi(96, 0.08, GeneratorConfig::uniform(17, 1, 30));
    let result = ThorupZwickScheme::new(3)
        .build(&graph, &SchemeConfig::default().with_seed(5))
        .unwrap();
    let sketches = &result.sketches;
    let table = DistanceTable::exact(&graph);
    for (u, v, exact) in table.pairs() {
        let walk = result.sketches.estimate(u, v).unwrap();
        let best = estimate_distance_best_common(sketches.sketch(u), sketches.sketch(v)).unwrap();
        assert!(best <= walk);
        assert!(best >= exact);
    }
}

#[test]
fn slack_constructions_work_on_multiple_families() {
    for (name, graph) in workload_suite().into_iter().take(4) {
        let table = DistanceTable::exact(&graph);
        let eps = 0.3;
        let config = SchemeConfig::default().with_seed(7);

        let three = ThreeStretchScheme::new(eps).build(&graph, &config).unwrap();
        let cdg = CdgScheme::new(eps, 2).build(&graph, &config).unwrap();

        for (u, v, exact) in table.pairs() {
            if !table.is_eps_far(u, v, eps) {
                continue;
            }
            let t = three.sketches.estimate(u, v).unwrap();
            assert!(t >= exact && t <= 3 * exact, "[{name}] 3-stretch violated");
            let c = cdg.sketches.estimate(u, v).unwrap();
            assert!(
                c >= exact && c <= 15 * exact,
                "[{name}] CDG (8k-1 = 15) stretch violated: {c} vs {exact}"
            );
        }
        // The CDG sketch only references net nodes, so it is never larger
        // than the 3-stretch sketch that stores the whole net.
        assert!(cdg.sketches.max_words() <= three.sketches.max_words() + 2 * cdg.sketches.params.k);
    }
}

#[test]
fn exact_oracle_and_landmarks_bracket_tz_accuracy() {
    use dsketch::baseline::{ExactOracle, LandmarkSketch};
    let graph = erdos_renyi(80, 0.1, GeneratorConfig::uniform(31, 1, 20));
    let oracle = ExactOracle::build(&graph);
    let landmarks = LandmarkSketch::build(&graph, 8, 2);
    let tz = ThorupZwickScheme::new(2)
        .build(&graph, &SchemeConfig::default().with_seed(2))
        .unwrap();
    let table = DistanceTable::exact(&graph);
    let mut tz_sum = 0.0;
    let mut lm_sum = 0.0;
    let mut count = 0usize;
    for (u, v, exact) in table.pairs() {
        assert_eq!(oracle.estimate(u, v).unwrap(), exact);
        let tz_est = tz.sketches.estimate(u, v).unwrap();
        let lm_est = landmarks.estimate(u, v).unwrap();
        tz_sum += tz_est as f64 / exact.max(1) as f64;
        lm_sum += lm_est as f64 / exact.max(1) as f64;
        count += 1;
    }
    // TZ with k=2 stores ~sqrt(n) entries and should on average beat 8
    // arbitrary landmarks.
    assert!(tz_sum / count as f64 <= lm_sum / count as f64 + 0.5);
}
