//! End-to-end loopback tests for the network front end: wire answers must
//! be identical to direct oracle calls for every scheme family and every
//! access path (single frames, batch frames, HTTP), graceful shutdown must
//! drain in-flight queries and refuse late connects, slow clients must hit
//! the read deadline without pinning a pool worker, and the wire counters
//! must account every frame exactly.

use dsketch::prelude::*;
use dsketch_serve::{
    net::{WireError, WireErrorCode},
    NetClient, NetConfig, NetServer, ServeConfig,
};
use netgraph::generators::{erdos_renyi, GeneratorConfig};
use netgraph::{Distance, NodeId};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn build_oracle(spec: SchemeSpec, n: usize) -> Arc<dyn DistanceOracle> {
    let graph = erdos_renyi(n, 0.15, GeneratorConfig::uniform(7, 1, 20));
    let outcome = SketchBuilder::new(spec)
        .seed(11)
        .build(&graph)
        .expect("construction");
    Arc::from(outcome.sketches)
}

/// A deterministic query stream, including out-of-range nodes so error
/// propagation is exercised alongside successful estimates.
fn query_stream(n: usize, count: usize, salt: u64) -> Vec<(NodeId, NodeId)> {
    (0..count as u64)
        .map(|i| {
            let a = (i.wrapping_mul(6364136223846793005).wrapping_add(salt) >> 16) as usize;
            let b = (i
                .wrapping_mul(2862933555777941757)
                .wrapping_add(salt ^ 0xabcd)
                >> 16) as usize;
            let u = if i % 97 == 0 { n + a % 5 } else { a % n };
            (NodeId::from_index(u), NodeId::from_index(b % n))
        })
        .collect()
}

/// A wire-side result must mirror the oracle-side result: equal distances,
/// or the matching error class.
fn assert_wire_matches(
    context: &str,
    wire: &Result<Distance, WireError>,
    direct: &Result<Distance, SketchError>,
) {
    match (wire, direct) {
        (Ok(w), Ok(d)) => assert_eq!(w, d, "{context}: wire answer must equal direct"),
        (Err(we), Err(se)) => {
            let expected = match se {
                SketchError::UnknownNode(_) => WireErrorCode::UnknownNode,
                SketchError::NoCommonLandmark { .. } => WireErrorCode::NoCommonLandmark,
                _ => WireErrorCode::Internal,
            };
            assert_eq!(
                we.code, expected,
                "{context}: error class must survive the wire"
            );
        }
        (w, d) => panic!("{context}: wire {w:?} disagrees with direct {d:?}"),
    }
}

/// One raw HTTP GET on a throwaway connection (`Connection: close` is the
/// server's policy, so read-to-EOF yields the whole reply).
fn http_get(addr: &str, path_and_query: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("http connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    write!(stream, "GET {path_and_query} HTTP/1.1\r\nhost: t\r\n\r\n").expect("request");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("reply");
    reply
}

/// The acceptance criterion: for all four scheme families, concurrent
/// single-frame, batch-frame, and HTTP clients all return exactly what
/// direct `estimate()` calls return — including errors.
#[test]
fn wire_answers_match_direct_oracle_for_every_family() {
    for spec in SchemeSpec::all_families() {
        let n = 48;
        let oracle = build_oracle(spec, n);
        let server = NetServer::start(
            Arc::clone(&oracle),
            ServeConfig::default()
                .with_shards(2)
                .with_cache_capacity(64),
            NetConfig::default().with_workers(4),
            "127.0.0.1:0",
        )
        .expect("server start");
        let addr = server.local_addr().to_string();

        std::thread::scope(|scope| {
            // Single-query frames.
            let single_addr = addr.clone();
            let single_oracle = Arc::clone(&oracle);
            scope.spawn(move || {
                let mut client =
                    NetClient::connect(&single_addr, Duration::from_secs(10)).expect("connect");
                for (u, v) in query_stream(n, 300, 1) {
                    let wire = client.query(u, v).expect("transport");
                    assert_wire_matches(
                        &format!("{spec} single ({u}, {v})"),
                        &wire,
                        &single_oracle.estimate(u, v),
                    );
                }
            });

            // Batch frames, compared against the trait-level batch path.
            let batch_addr = addr.clone();
            let batch_oracle = Arc::clone(&oracle);
            scope.spawn(move || {
                let mut client =
                    NetClient::connect(&batch_addr, Duration::from_secs(10)).expect("connect");
                let pairs = query_stream(n, 300, 2);
                for chunk in pairs.chunks(32) {
                    let wire = client.query_batch(chunk).expect("transport");
                    let direct = batch_oracle.estimate_batch(chunk);
                    assert_eq!(wire.len(), direct.len(), "{spec}: order-preserving");
                    for ((w, d), &(u, v)) in wire.iter().zip(&direct).zip(chunk) {
                        assert_wire_matches(&format!("{spec} batch ({u}, {v})"), w, d);
                    }
                }
            });

            // HTTP, one connection per request (the server's policy).
            let http_addr = addr.clone();
            let http_oracle = Arc::clone(&oracle);
            scope.spawn(move || {
                for (u, v) in query_stream(n, 40, 3) {
                    let reply = http_get(&http_addr, &format!("/distance?u={}&v={}", u.0, v.0));
                    match http_oracle.estimate(u, v) {
                        Ok(d) => {
                            assert!(
                                reply.starts_with("HTTP/1.1 200"),
                                "{spec} http ({u}, {v}): {reply}"
                            );
                            assert!(
                                reply.contains(&format!("\"distance\":{d},\"scheme\"")),
                                "{spec} http ({u}, {v}): body must carry {d}: {reply}"
                            );
                        }
                        Err(SketchError::UnknownNode(_)) => {
                            assert!(reply.starts_with("HTTP/1.1 404"), "{spec}: {reply}");
                            assert!(reply.contains("\"error\":\"unknown-node\""), "{reply}");
                        }
                        Err(SketchError::NoCommonLandmark { .. }) => {
                            assert!(reply.starts_with("HTTP/1.1 422"), "{spec}: {reply}");
                            assert!(
                                reply.contains("\"error\":\"no-common-landmark\""),
                                "{reply}"
                            );
                        }
                        Err(_) => {
                            assert!(reply.starts_with("HTTP/1.1 500"), "{spec}: {reply}");
                        }
                    }
                }
            });
        });

        let stats = server.shutdown();
        assert_eq!(
            stats.net.protocol_errors, 0,
            "{spec}: well-formed traffic only: {stats}"
        );
        assert!(
            stats.serve.totals.queries >= (300 + 300 + 40) as u64,
            "{spec}: every wire query reaches the router: {stats}"
        );
    }
}

/// An oracle wrapper that answers slowly, so a query can reliably be
/// in flight when shutdown starts.
struct SlowOracle {
    inner: Arc<dyn DistanceOracle>,
    delay: Duration,
}

impl DistanceOracle for SlowOracle {
    fn estimate(&self, u: NodeId, v: NodeId) -> Result<Distance, SketchError> {
        std::thread::sleep(self.delay);
        self.inner.estimate(u, v)
    }
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }
    fn words(&self, u: NodeId) -> usize {
        self.inner.words(u)
    }
    fn scheme_name(&self) -> &'static str {
        self.inner.scheme_name()
    }
    fn stretch_bound(&self) -> Option<u64> {
        self.inner.stretch_bound()
    }
}

/// Graceful shutdown: a query already on the wire completes with the right
/// answer while the server drains, and connects after shutdown are refused.
#[test]
fn shutdown_drains_in_flight_queries_then_refuses_connects() {
    let n = 32;
    let inner = build_oracle(SchemeSpec::thorup_zwick(2), n);
    let expected = inner.estimate(NodeId(0), NodeId(1));
    let slow: Arc<dyn DistanceOracle> = Arc::new(SlowOracle {
        inner,
        delay: Duration::from_millis(400),
    });
    let server = NetServer::start(
        slow,
        ServeConfig::default().with_shards(1),
        NetConfig::default()
            .with_workers(2)
            .with_read_timeout(Duration::from_secs(5)),
        "127.0.0.1:0",
    )
    .expect("server start");
    let addr = server.local_addr().to_string();

    let in_flight = std::thread::spawn(move || {
        let mut client = NetClient::connect(&addr, Duration::from_secs(10)).expect("connect");
        client.query(NodeId(0), NodeId(1)).expect("transport")
    });

    // Let the query land in a worker (loopback delivery is far faster than
    // the 400 ms the oracle then sleeps), then shut down underneath it.
    std::thread::sleep(Duration::from_millis(150));
    let late_addr = server.local_addr();
    let stats = server.shutdown();

    let answer = in_flight.join().expect("client thread");
    assert_wire_matches("drained query", &answer, &expected);
    assert!(
        stats.serve.totals.queries >= 1,
        "the drained query is counted: {stats}"
    );

    // The listener is gone: new connections are refused outright.
    match TcpStream::connect_timeout(&late_addr, Duration::from_millis(500)) {
        Err(_) => {}
        Ok(_) => panic!("connects after shutdown must be refused"),
    }
}

/// A client that dribbles bytes (or stops mid-frame) is cut off at the
/// read deadline — and with a single worker, a healthy client queued
/// behind it still gets served, proving the stall does not pin the pool.
#[test]
fn slow_clients_hit_the_deadline_without_pinning_the_worker() {
    let n = 32;
    let oracle = build_oracle(SchemeSpec::thorup_zwick(2), n);
    let server = NetServer::start(
        Arc::clone(&oracle),
        ServeConfig::default().with_shards(1),
        NetConfig::default()
            .with_workers(1)
            .with_read_timeout(Duration::from_millis(250)),
        "127.0.0.1:0",
    )
    .expect("server start");
    let addr = server.local_addr().to_string();

    // Round 1: a byte-at-a-time client slower than the deadline.
    let dribble_addr = addr.clone();
    let dribbler = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(&dribble_addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let frame = dsketch_serve::net::Request::Query {
            u: NodeId(0),
            v: NodeId(1),
        }
        .to_frame();
        // Pass the protocol sniff immediately, then dribble one byte per
        // 60 ms — slower than the whole-frame deadline allows.
        stream.write_all(&frame[..4]).expect("magic");
        for &byte in &frame[4..] {
            if stream.write_all(&[byte]).is_err() {
                return; // cut off mid-dribble: the deadline fired
            }
            std::thread::sleep(Duration::from_millis(60));
        }
        // All bytes were buffered before the cut: the close shows up on read.
        let mut sink = [0u8; 64];
        loop {
            match stream.read(&mut sink) {
                Ok(0) | Err(_) => return,
                Ok(_) => {}
            }
        }
    });

    // While the dribbler occupies the only worker, a healthy client queues
    // behind it and must still be answered shortly after the deadline cut.
    std::thread::sleep(Duration::from_millis(50));
    let started = Instant::now();
    let mut healthy = NetClient::connect(&addr, Duration::from_secs(10)).expect("connect");
    let wire = healthy
        .query(NodeId(2), NodeId(3))
        .expect("healthy transport");
    assert_eq!(
        wire.ok(),
        oracle.estimate(NodeId(2), NodeId(3)).ok(),
        "queued client gets the right answer"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "healthy client must not wait out the dribbler"
    );
    dribbler.join().expect("dribbler thread");
    drop(healthy);

    // Round 2: a client that sends a valid header plus a partial payload,
    // then goes silent with the socket open.
    let mut stalled = TcpStream::connect(&addr).expect("connect");
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let frame = dsketch_serve::net::Request::Query {
        u: NodeId(4),
        v: NodeId(5),
    }
    .to_frame();
    stalled.write_all(&frame[..15]).expect("partial frame");
    let cut_started = Instant::now();
    let mut sink = [0u8; 64];
    loop {
        match stalled.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    let cut_after = cut_started.elapsed();
    assert!(
        cut_after < Duration::from_secs(5),
        "mid-frame stall must be cut at the deadline, not held: {cut_after:?}"
    );

    // ... and the worker is free again.
    let mut after = NetClient::connect(&addr, Duration::from_secs(10)).expect("connect");
    after.ping().expect("worker is free after the stall");
    drop(after);

    let stats = server.shutdown();
    assert!(
        stats.net.timeouts >= 2,
        "both slow connections count as timeouts: {stats}"
    );
}

/// Exact wire-level accounting across a known traffic sequence: every
/// frame, HTTP request, connection, and byte is counted.
#[test]
fn wire_counters_account_every_frame_exactly() {
    let n = 32;
    let oracle = build_oracle(SchemeSpec::thorup_zwick(2), n);
    let server = NetServer::start(
        Arc::clone(&oracle),
        ServeConfig::default().with_shards(1),
        NetConfig::default().with_workers(2),
        "127.0.0.1:0",
    )
    .expect("server start");
    let addr = server.local_addr().to_string();

    // Connection 1 (binary): ping + 2 single queries + one 3-pair batch +
    // one stats frame = 5 frames each way.
    let mut client = NetClient::connect(&addr, Duration::from_secs(10)).expect("connect");
    client.ping().expect("ping");
    assert!(client.query(NodeId(0), NodeId(1)).expect("q1").is_ok());
    assert!(client.query(NodeId(1), NodeId(2)).expect("q2").is_ok());
    let batch = client
        .query_batch(&[
            (NodeId(2), NodeId(3)),
            (NodeId(3), NodeId(4)),
            (NodeId(4), NodeId(5)),
        ])
        .expect("batch");
    assert_eq!(batch.len(), 3);
    let stats_doc = client.stats_json().expect("stats frame");
    assert!(
        stats_doc.contains(&format!("\"num_nodes\":{n}")),
        "stats carry the oracle shape: {stats_doc}"
    );
    drop(client);

    // Connections 2 and 3 (HTTP): one routed request each.
    let reply = http_get(&addr, "/distance?u=0&v=1");
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    let reply = http_get(&addr, "/stats");
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    assert!(reply.contains(&format!("\"num_nodes\":{n}")), "{reply}");

    let stats = server.shutdown();
    assert_eq!(stats.net.connections_accepted, 3, "{stats}");
    assert_eq!(stats.net.connections_closed, 3, "{stats}");
    assert_eq!(stats.net.connections_refused, 0, "{stats}");
    assert_eq!(stats.net.frames_in, 5, "{stats}");
    assert_eq!(stats.net.frames_out, 5, "{stats}");
    assert_eq!(stats.net.http_requests, 2, "{stats}");
    assert_eq!(stats.net.protocol_errors, 0, "{stats}");
    assert_eq!(stats.net.timeouts, 0, "{stats}");
    assert!(stats.net.bytes_in > 0 && stats.net.bytes_out > 0, "{stats}");
    // Router-side: 2 singles + 3 batch slots + 1 HTTP distance = 6 queries.
    assert_eq!(stats.serve.totals.queries, 6, "{stats}");
}
