//! Integration tests of the CONGEST simulator invariants under the real
//! sketch workloads (not just the toy programs of the unit tests).

use congest_sim::programs::bellman_ford::KSourceBellmanFord;
use congest_sim::programs::bfs_tree::build_bfs_tree;
use congest_sim::{CongestConfig, Network};
use dsketch::prelude::*;
use netgraph::generators::{erdos_renyi, grid, GeneratorConfig};
use netgraph::shortest_path::multi_source_dijkstra;
use netgraph::NodeId;

/// The engine's parallel execution must be observationally identical to the
/// sequential one for the real construction, not just for toy floods.
#[test]
fn thread_count_does_not_change_results_or_stats() {
    let graph = erdos_renyi(100, 0.08, GeneratorConfig::uniform(7, 1, 25));
    let (h, _) =
        Hierarchy::sample_until_top_nonempty(100, &TzParams::new(3).with_seed(4), 500).unwrap();

    let mut results = Vec::new();
    for threads in [1usize, 2, 8] {
        let config = SchemeConfig::default().with_congest(CongestConfig {
            num_threads: threads,
            ..Default::default()
        });
        results.push(
            ThorupZwickScheme::new(3)
                .build_with_hierarchy(&graph, h.clone(), &config)
                .unwrap(),
        );
    }
    for pair in results.windows(2) {
        assert_eq!(
            pair[0].stats, pair[1].stats,
            "stats differ across thread counts"
        );
        for u in graph.nodes() {
            assert_eq!(pair[0].sketches.sketch(u), pair[1].sketches.sketch(u));
        }
    }
}

/// Message accounting: every delivered message is counted exactly once, so
/// the total equals the sum over rounds and the per-round maximum is
/// consistent.
#[test]
fn stats_are_internally_consistent() {
    let graph = grid(10, 10, GeneratorConfig::uniform(3, 1, 10));
    let result = ThorupZwickScheme::new(2)
        .build(&graph, &SchemeConfig::default().with_seed(9))
        .unwrap();
    let stats = &result.stats;
    assert!(stats.active_rounds <= stats.rounds);
    assert!(stats.max_messages_in_round <= stats.messages);
    assert!(
        stats.words >= stats.messages,
        "every message carries at least one word"
    );
    assert_eq!(stats.bandwidth_violations, 0);
    // Phase stats sum to the total in oracle mode.
    let phase_total: u64 = result.phase_stats.iter().map(|s| s.messages).sum();
    assert_eq!(phase_total, stats.messages);
    let phase_rounds: u64 = result.phase_stats.iter().map(|s| s.rounds).sum();
    assert_eq!(phase_rounds, stats.rounds);
}

/// The BFS tree used by termination detection must be a valid spanning tree
/// on every workload family, and the k-source primitive must agree with
/// Dijkstra when run over the tree's root set.
#[test]
fn bfs_tree_and_k_source_agree_with_centralized_computations() {
    let graph = erdos_renyi(90, 0.07, GeneratorConfig::uniform(13, 1, 30));
    let (trees, stats) = build_bfs_tree(&graph, CongestConfig::default());
    assert!(stats.rounds > 0);
    // Spanning-tree checks.
    let root = trees[0].root;
    assert!(trees.iter().all(|t| t.root == root));
    let child_edges: usize = trees.iter().map(|t| t.children.len()).sum();
    assert_eq!(child_edges, graph.num_nodes() - 1);

    // k-source Bellman-Ford vs Dijkstra from a handful of sources.
    let sources = [NodeId(0), NodeId(30), NodeId(60), NodeId(89)];
    let mut net = Network::new(&graph, CongestConfig::strict(), |u| {
        KSourceBellmanFord::new(u, sources.contains(&u))
    });
    let outcome = net.run_until_quiescent(u64::MAX);
    assert!(outcome.completed);
    for &s in &sources {
        let exact = multi_source_dijkstra(&graph, &[s]);
        for (i, p) in net.programs().iter().enumerate() {
            assert_eq!(p.distance_to(s), exact.dist[i]);
        }
    }
}

/// Strict CONGEST mode (one message per edge per round) is sufficient for the
/// oracle-synchronized construction: the round-robin queues never violate it.
#[test]
fn oracle_mode_runs_under_strict_bandwidth() {
    let graph = grid(9, 9, GeneratorConfig::uniform(5, 1, 8));
    let config = SchemeConfig::default()
        .with_seed(2)
        .with_congest(CongestConfig::strict());
    let result = ThorupZwickScheme::new(3).build(&graph, &config).unwrap();
    assert_eq!(result.stats.bandwidth_violations, 0);
    assert!(result.sketches.max_words() > 0);
}

/// The word totals reported by the engine match the per-message accounting of
/// the TZ data messages (2 words each) within the expected envelope.
#[test]
fn word_accounting_matches_message_types() {
    let graph = erdos_renyi(64, 0.1, GeneratorConfig::uniform(21, 1, 10));
    let result = ThorupZwickScheme::new(2)
        .build(&graph, &SchemeConfig::default().with_seed(6))
        .unwrap();
    // Oracle mode sends only SourcedAnnouncement messages (2 words each).
    assert_eq!(result.stats.words, 2 * result.stats.messages);
}
