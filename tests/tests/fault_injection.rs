//! Cross-crate fault-injection contracts: the serve stack degrades only
//! in availability, never in correctness.
//!
//! * A save that fails at **any** `store.save.*` failpoint leaves the old
//!   snapshot byte-identical and loadable, and no `*.tmp` litter.
//! * Property test: a staging file torn at any byte boundary is rejected
//!   by both the cold-start loader and the deep verifier — the filesystem
//!   only ever holds the old state or the new state, never a third.
//! * An injected shard panic surfaces as the typed retryable
//!   `ShardPanicked` error, is followed by a recorded supervisor restart,
//!   and the shard keeps serving afterwards.
//! * `connect_with_retry` rides out a listener that binds late and
//!   returns a typed error once its deadline is spent.
//! * A full accept hand-off queue answers plain HTTP `503` with
//!   `Retry-After` and counts one overload.
//! * `GET`/`POST /faults` arm, report, and disarm the process registry.
//!
//! Failpoints are process-global, so every test that arms (or must see a
//! disarmed registry) serializes on one lock and disarms on drop — a
//! failing assertion can never leak faults into a neighbouring test.

use dsketch::prelude::*;
use dsketch_serve::{NetClient, NetConfig, NetServer, ServeConfig, SketchServer};
use dsketch_store::{build_stored, load_frozen_oracle, save_snapshot, snapshot_tmp_path};
use netgraph::generators::{erdos_renyi, GeneratorConfig};
use netgraph::{Graph, NodeId};
use proptest::prelude::*;
use std::io::Read;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Holds the process-wide fault lock for one test body; arms `spec` on
/// entry (see [`ArmedScope::arm`]) and disarms on drop, panicking or not.
struct ArmedScope {
    _guard: MutexGuard<'static, ()>,
}

impl ArmedScope {
    /// Serialize and arm `spec`.
    fn arm(spec: &str) -> ArmedScope {
        let scope = ArmedScope::bare();
        dsketch_faults::arm_from_spec(spec).expect("valid fault spec");
        scope
    }

    /// Serialize with the registry disarmed (for tests that need to *see*
    /// a fault-free process, or that arm through the HTTP endpoint).
    fn bare() -> ArmedScope {
        let guard = FAULT_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        dsketch_faults::disarm_all();
        ArmedScope { _guard: guard }
    }
}

impl Drop for ArmedScope {
    fn drop(&mut self) {
        dsketch_faults::disarm_all();
    }
}

fn graph(n: usize, seed: u64) -> Graph {
    erdos_renyi(n, 8.0 / n as f64, GeneratorConfig::uniform(seed, 1, 50))
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("dsketch_fault_injection");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A deterministic sample of query pairs covering the whole id range.
fn sample_pairs(n: usize, count: u32) -> Vec<(NodeId, NodeId)> {
    (0..count)
        .map(|i| {
            (
                NodeId((i.wrapping_mul(2654435761)) % n as u32),
                NodeId((i.wrapping_mul(40503).wrapping_add(12345)) % n as u32),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Crash-safe saves: every store failpoint fails cleanly.
// ---------------------------------------------------------------------------

#[test]
fn failed_saves_leave_no_litter_and_preserve_the_old_snapshot() {
    let graph = graph(48, 5);
    let contents = build_stored(
        &graph,
        SchemeSpec::thorup_zwick(2),
        &SchemeConfig::default().with_seed(3),
    )
    .expect("build");
    let path = temp_path("crash_safe.dsk");
    {
        let _scope = ArmedScope::bare();
        save_snapshot(&path, &contents).expect("clean save");
    }
    let old_bytes = std::fs::read(&path).expect("snapshot bytes");

    for spec in [
        "seed=3;store.save.create=error,max=1",
        "seed=3;store.save.write=error,max=1",
        "seed=3;store.save.write=partial:64,max=1",
        "seed=3;store.save.fsync=error,max=1",
        "seed=3;store.save.rename=error,max=1",
        "seed=3;store.write.section=partial:16,max=1",
    ] {
        let _scope = ArmedScope::arm(spec);
        assert!(
            save_snapshot(&path, &contents).is_err(),
            "{spec}: the armed save must fail"
        );
        assert_eq!(
            dsketch_faults::registry().total_trips(),
            1,
            "{spec}: exactly one injected fault fired"
        );
        assert!(
            !snapshot_tmp_path(&path).exists(),
            "{spec}: a failed save must not litter *.tmp"
        );
        assert_eq!(
            std::fs::read(&path).expect("old snapshot"),
            old_bytes,
            "{spec}: the old snapshot stays byte-identical"
        );
        load_frozen_oracle(&path).expect("the old snapshot stays loadable");
    }

    // Disarmed, the identical save succeeds over the same path.
    let _scope = ArmedScope::bare();
    save_snapshot(&path, &contents).expect("disarmed save");
    load_frozen_oracle(&path).expect("fresh snapshot loads");
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// Torn staging files: old state or new state, never a third.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn a_torn_staging_file_is_rejected_and_the_old_snapshot_survives(
        cut_permille in 0usize..1000,
        seed in 0u64..4,
    ) {
        let _scope = ArmedScope::bare();
        let graph = graph(32, seed + 1);
        let contents = build_stored(
            &graph,
            SchemeSpec::thorup_zwick(2),
            &SchemeConfig::default().with_seed(seed),
        )
        .expect("build");
        let path = temp_path(&format!("torn_{seed}_{cut_permille}.dsk"));
        save_snapshot(&path, &contents).expect("clean save");
        let bytes = std::fs::read(&path).expect("snapshot bytes");

        // Simulate a writer killed mid-stage: the published file still
        // holds the old state, the staging file holds a strict prefix.
        let cut = cut_permille * (bytes.len() - 1) / 1000;
        let tmp = snapshot_tmp_path(&path);
        std::fs::write(&tmp, &bytes[..cut]).expect("torn staging file");

        // Old state: intact and loadable.
        load_frozen_oracle(&path).expect("published snapshot unaffected");
        // Third state: impossible.  The torn staging file is rejected by
        // the cold-start loader and by the independent deep verifier.
        prop_assert!(
            SketchServer::from_snapshot(&tmp, ServeConfig::default()).is_err(),
            "cold start must reject a torn staging file"
        );
        prop_assert!(
            dsketch_analysis::verify_snapshot_file(&tmp).is_err(),
            "deep verify must reject a torn staging file"
        );

        std::fs::remove_file(&tmp).ok();
        std::fs::remove_file(&path).ok();
    }
}

// ---------------------------------------------------------------------------
// Shard supervision: panic → typed error → restart → keep serving.
// ---------------------------------------------------------------------------

#[test]
fn an_injected_shard_panic_is_restarted_and_the_shard_keeps_serving() {
    let graph = graph(48, 7);
    let outcome = SketchBuilder::new(SchemeSpec::thorup_zwick(2))
        .seed(3)
        .build(&graph)
        .expect("build");
    let oracle: Arc<dyn DistanceOracle> = Arc::from(outcome.sketches);
    let server =
        SketchServer::start(Arc::clone(&oracle), ServeConfig::default()).expect("server start");
    let client = server.client();
    let pairs = sample_pairs(48, 256);

    let scope = ArmedScope::arm("seed=11;serve.shard.dispatch=panic,max=2");
    let mut panicked = 0u32;
    for chunk in pairs.chunks(32) {
        for (mut result, &(u, v)) in client.query_batch(chunk).into_iter().zip(chunk) {
            let mut retries = 0u32;
            while let Err(SketchError::ShardPanicked { shard }) = result {
                panicked += 1;
                assert!(shard < 4, "the error names a real shard");
                assert!(
                    result.as_ref().unwrap_err().to_string().contains("retry"),
                    "the typed error spells out the retry contract"
                );
                retries += 1;
                assert!(retries <= 16, "retry budget exhausted for ({u}, {v})");
                result = client.query(u, v);
            }
            match (result, oracle.estimate(u, v)) {
                (Ok(got), Ok(want)) => assert_eq!(got, want, "wrong answer at ({u}, {v})"),
                (Err(_), Err(_)) => {}
                (got, want) => panic!("divergence at ({u}, {v}): {got:?} vs {want:?}"),
            }
        }
    }
    assert!(
        panicked >= 2,
        "both armed panics must shed at least one in-flight pair"
    );
    drop(scope);

    // Disarmed sweep: the restarted shards answer everything correctly.
    for chunk in pairs.chunks(64) {
        for (result, &(u, v)) in client.query_batch(chunk).into_iter().zip(chunk) {
            match (result, oracle.estimate(u, v)) {
                (Ok(got), Ok(want)) => assert_eq!(got, want),
                (Err(SketchError::ShardPanicked { .. }), _) => {
                    panic!("no shard may stay panicked after the storm")
                }
                (Err(_), Err(_)) => {}
                (got, want) => panic!("divergence at ({u}, {v}): {got:?} vs {want:?}"),
            }
        }
    }
    drop(client);
    let stats = server.shutdown();
    assert_eq!(
        stats.totals.restarts, 2,
        "every injected panic is followed by exactly one recorded restart"
    );
}

// ---------------------------------------------------------------------------
// connect_with_retry: late listeners and spent deadlines.
// ---------------------------------------------------------------------------

#[test]
fn connect_with_retry_rides_out_a_late_listener_and_times_out_cleanly() {
    // Reserve a port the OS considers free, then release it.
    let placeholder = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let addr = placeholder.local_addr().expect("addr").to_string();
    drop(placeholder);

    // Nothing listens: the deadline is spent on backoff sleeps, then the
    // final attempt's typed error surfaces.
    let started = Instant::now();
    assert!(
        NetClient::connect_with_retry(&addr, Duration::from_millis(50), Duration::from_millis(300))
            .is_err(),
        "no listener ever appears"
    );
    assert!(
        started.elapsed() >= Duration::from_millis(280),
        "the whole deadline is spent retrying, not failing fast"
    );

    // A listener that binds late: the retry loop connects once it exists.
    let late_addr = addr.clone();
    let listener = dsketch::parallel::spawn_named("late-listener", move || {
        std::thread::sleep(Duration::from_millis(150));
        let listener = std::net::TcpListener::bind(&late_addr).expect("late bind");
        listener.accept().expect("accept the retried connect");
    });
    let started = Instant::now();
    let client =
        NetClient::connect_with_retry(&addr, Duration::from_secs(1), Duration::from_secs(10))
            .expect("connect once the listener appears");
    assert!(
        started.elapsed() >= Duration::from_millis(100),
        "the first attempts must have been refused"
    );
    drop(client);
    listener.join().expect("listener thread");
}

// ---------------------------------------------------------------------------
// Overload shedding: 503 + Retry-After, counted once.
// ---------------------------------------------------------------------------

#[test]
fn a_full_accept_queue_answers_503_with_retry_after() {
    let graph = graph(32, 9);
    let outcome = SketchBuilder::new(SchemeSpec::thorup_zwick(2))
        .seed(3)
        .build(&graph)
        .expect("build");
    let oracle: Arc<dyn DistanceOracle> = Arc::from(outcome.sketches);
    let server = NetServer::start(
        Arc::clone(&oracle),
        ServeConfig::default(),
        NetConfig::default(),
        "127.0.0.1:0",
    )
    .expect("net server start");
    let addr = server.local_addr().to_string();

    let scope = ArmedScope::arm("seed=5;net.accept.handoff=error,max=1");
    let mut shed = std::net::TcpStream::connect(&addr).expect("tcp connect");
    shed.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut reply = String::new();
    shed.read_to_string(&mut reply)
        .expect("read the shed reply");
    assert!(
        reply.starts_with("HTTP/1.1 503 Service Unavailable"),
        "shed connections get a real status line: {reply:?}"
    );
    assert!(reply.contains("Retry-After: 1"), "{reply:?}");
    assert!(reply.contains("\"error\":\"overloaded\""), "{reply:?}");
    drop(scope);

    // The next connection is accepted and served normally.
    let mut client =
        NetClient::connect_with_retry(&addr, Duration::from_secs(5), Duration::from_secs(5))
            .expect("post-shed connect");
    client.ping().expect("ping after the shed");
    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.net.overloads, 1, "one shed accept, one overload");
}

// ---------------------------------------------------------------------------
// The /faults debug endpoint.
// ---------------------------------------------------------------------------

#[test]
fn the_faults_endpoint_arms_reports_and_disarms() {
    use std::io::Write;

    fn http(addr: &str, method: &str, target: &str) -> String {
        let mut stream = std::net::TcpStream::connect(addr).expect("http connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        write!(
            stream,
            "{method} {target} HTTP/1.1\r\nhost: dsketch\r\nconnection: close\r\n\r\n"
        )
        .expect("http write");
        let mut body = String::new();
        stream.read_to_string(&mut body).expect("http read");
        body
    }

    let _scope = ArmedScope::bare();
    let graph = graph(32, 11);
    let outcome = SketchBuilder::new(SchemeSpec::thorup_zwick(2))
        .seed(3)
        .build(&graph)
        .expect("build");
    let oracle: Arc<dyn DistanceOracle> = Arc::from(outcome.sketches);
    let server = NetServer::start(
        Arc::clone(&oracle),
        ServeConfig::default(),
        NetConfig::default(),
        "127.0.0.1:0",
    )
    .expect("net server start");
    let addr = server.local_addr().to_string();

    // Disarmed process: the CI `faults-disarmed` assert keys on this.
    let clean = http(&addr, "GET", "/faults");
    assert!(clean.contains("\"armed_points\":0"), "{clean:?}");
    assert!(clean.contains("\"total_trips\":0"), "{clean:?}");

    // Arm a plan whose `after` keeps it from ever actually tripping.
    // spec = seed=9;store.load.read=error,after=1000000
    let spec = "seed%3D9%3Bstore.load.read%3Derror%2Cafter%3D1000000";
    let armed = http(&addr, "POST", &format!("/faults?spec={spec}"));
    assert!(armed.contains("\"armed_points\":1"), "{armed:?}");
    assert!(armed.contains("\"point\":\"store.load.read\""), "{armed:?}");
    assert!(armed.contains("\"action\":\"error\""), "{armed:?}");
    assert!(armed.contains("\"after\":1000000"), "{armed:?}");
    assert_eq!(dsketch_faults::registry().armed_points(), 1);

    // A bad spec is a 400 and leaves the armed plan untouched.
    let bad = http(&addr, "POST", "/faults?spec=nonsense");
    assert!(bad.contains("bad-fault-spec"), "{bad:?}");
    assert_eq!(dsketch_faults::registry().armed_points(), 1);

    let disarmed = http(&addr, "POST", "/faults?disarm=all");
    assert!(disarmed.contains("\"armed_points\":0"), "{disarmed:?}");
    assert_eq!(dsketch_faults::registry().armed_points(), 0);
    server.shutdown();
}
