//! Validation of the Lemma 4.5 claim: when the Thorup–Zwick hierarchy is
//! restricted to a subset `N ⊆ V` (in the paper, the ε-density net), the
//! sketches that the *net nodes* obtain from the distributed construction on
//! `G` are exactly the sketches they would obtain from running the
//! construction on the metric completion of `N`.
//!
//! This is the structural fact the whole Section 4 analysis leans on, so we
//! check it literally: build the (ε, k)-CDG sketches on `G`, build the
//! centralized Thorup–Zwick oracle on the metric completion of the same net
//! with the same (relabelled) hierarchy, and compare the net nodes' labels
//! entry by entry.

use dsketch::prelude::*;
use netgraph::completion::MetricCompletion;
use netgraph::generators::{erdos_renyi, grid, GeneratorConfig};
use netgraph::{Graph, NodeId};

fn check_lemma_4_5(graph: &Graph, eps: f64, k: usize, seed: u64) {
    // 1. Run the distributed net-restricted construction on G.
    let cdg = CdgScheme::new(eps, k)
        .build(graph, &SchemeConfig::default().with_seed(seed))
        .unwrap()
        .sketches;
    let net_members: Vec<NodeId> = cdg.net.members().to_vec();
    assert!(!net_members.is_empty());

    // 2. Build the metric completion of the net and relabel the hierarchy
    //    onto the completion's dense ids.
    let completion = MetricCompletion::build(graph, &net_members);
    let levels: Vec<i32> = completion
        .original
        .iter()
        .map(|&orig| cdg.hierarchy.level_of(orig))
        .collect();
    let local_hierarchy = Hierarchy::from_levels(levels, cdg.hierarchy.k()).unwrap();

    // 3. Centralized Thorup–Zwick on the metric completion.
    let on_completion = CentralizedTz::build(&completion.graph, &local_hierarchy);

    // 4. The net nodes' sketches must agree (after relabelling): same pivots
    //    (as original ids and distances) and same bunches.
    for (local_idx, &orig) in completion.original.iter().enumerate() {
        let local = NodeId::from_index(local_idx);
        let from_g = cdg.sketches.sketch(orig);
        let from_completion = on_completion.sketches.sketch(local);

        // Pivots.
        for level in 0..cdg.hierarchy.k() {
            let a = from_g.pivot(level);
            let b = from_completion
                .pivot(level)
                .map(|(p, d)| (completion.original_id(p), d));
            assert_eq!(a, b, "pivot mismatch at net node {orig}, level {level}");
        }

        // Bunches.
        assert_eq!(
            from_g.bunch_size(),
            from_completion.bunch_size(),
            "bunch size mismatch at net node {orig}"
        );
        for (&member_local, entry) in from_completion.bunch() {
            let member_orig = completion.original_id(member_local);
            let in_g = from_g
                .bunch()
                .get(&member_orig)
                .unwrap_or_else(|| panic!("{member_orig} missing from {orig}'s bunch on G"));
            assert_eq!(in_g.distance, entry.distance, "distance mismatch at {orig}");
            assert_eq!(in_g.level, entry.level, "level mismatch at {orig}");
        }
    }
}

#[test]
fn lemma_4_5_holds_on_random_graph() {
    let g = erdos_renyi(90, 0.08, GeneratorConfig::uniform(3, 1, 25));
    check_lemma_4_5(&g, 0.3, 2, 7);
}

#[test]
fn lemma_4_5_holds_on_grid() {
    let g = grid(8, 8, GeneratorConfig::uniform(5, 1, 10));
    check_lemma_4_5(&g, 0.35, 2, 11);
}

#[test]
fn lemma_4_5_holds_with_three_levels() {
    let g = erdos_renyi(120, 0.06, GeneratorConfig::uniform(9, 1, 40));
    check_lemma_4_5(&g, 0.2, 3, 3);
}
