//! The deep verifier versus hostile snapshots.
//!
//! Two halves, mirroring the verifier's contract (`dsketch-analysis`):
//!
//! * **Soundness on valid input** — every snapshot the pipeline produces,
//!   for every family over random graphs and seeds, passes deep
//!   verification and reports the right entity counts (property-tested).
//! * **Rejection of corrupted input** — a mutation sweep.  Unsigned
//!   single-bit flips anywhere in the file must be rejected (the CRCs'
//!   job).  Then the adversarial half: targeted semantic corruptions with
//!   the CRCs **re-signed**, which the container accepts and only the
//!   semantic walk can catch — each must fail with the *specific*
//!   [`dsketch_analysis::AnalysisError`] variant for the violated
//!   contract, asserted via `AnalysisError::kind()`.

use dsketch::prelude::*;
use dsketch_analysis::verify_snapshot_bytes;
use dsketch_store::{build_stored, write_snapshot, SnapshotWriter, SECTION_BUILD_STATS};
use netgraph::generators::{erdos_renyi, GeneratorConfig};
use netgraph::Graph;
use proptest::prelude::*;

fn graph(n: usize, seed: u64) -> Graph {
    erdos_renyi(n, 8.0 / n as f64, GeneratorConfig::uniform(seed, 1, 50))
}

fn snapshot_bytes(spec: SchemeSpec, n: usize, seed: u64) -> Vec<u8> {
    let contents = build_stored(
        &graph(n, seed),
        spec,
        &SchemeConfig::default()
            .with_seed(seed)
            .with_parallel_build(),
    )
    .unwrap();
    let mut bytes = Vec::new();
    write_snapshot(&mut bytes, &contents).unwrap();
    bytes
}

// ---------------------------------------------------------------------------
// A tiny independent view of the container, for surgical mutations
// ---------------------------------------------------------------------------

/// Bitwise CRC-32 (IEEE, reflected) — the tests' own third implementation,
/// so a re-signed mutation does not depend on either code path under test.
fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn le_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn le_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

/// Where things live in one snapshot: the section rows (id, payload
/// offset, length) and the fixed landmarks needed to re-sign it.
struct Layout {
    /// Start of the section-row array within the file.
    rows_start: usize,
    /// End of the header body == where the header CRC lives.
    body_end: usize,
    /// `(id, file offset, len)` per section, in payload order.
    sections: Vec<([u8; 4], usize, usize)>,
}

/// Recover the section table without decoding the (variable-length) scheme
/// spec: the rows are the last `count * 24` bytes of the header body with
/// the count word directly before them, so the right `count` is the one
/// whose rows are contiguous and exactly cover the payload area.
fn layout(bytes: &[u8]) -> Layout {
    let header_len = le_u32(bytes, 8) as usize;
    let body_end = 12 + header_len - 4;
    let payload_start = 12 + header_len;
    let payload_len = bytes.len() - payload_start;
    for count in 0..=32usize {
        let rows_start = match (body_end.checked_sub(count * 24), count) {
            (Some(start), _) if start >= 16 => start,
            _ => break,
        };
        if le_u32(bytes, rows_start - 4) as usize != count {
            continue;
        }
        let mut sections = Vec::new();
        let mut cursor = 0usize;
        let mut consistent = true;
        for row in 0..count {
            let at = rows_start + row * 24;
            let id: [u8; 4] = bytes[at..at + 4].try_into().unwrap();
            let offset = le_u64(bytes, at + 4) as usize;
            let len = le_u64(bytes, at + 12) as usize;
            if offset != cursor {
                consistent = false;
                break;
            }
            sections.push((id, payload_start + offset, len));
            cursor = offset + len;
        }
        if consistent && cursor == payload_len {
            return Layout {
                rows_start,
                body_end,
                sections,
            };
        }
    }
    panic!("could not recover the section table from the snapshot bytes");
}

/// Recompute every section CRC and the header CRC — what an adversary (or
/// a buggy writer) would do after editing payload bytes, producing a file
/// the container-level checks fully accept.
fn resign(bytes: &mut [u8]) {
    let layout = layout(bytes);
    for (row, &(_, file_offset, len)) in layout.sections.iter().enumerate() {
        let crc = crc32(&bytes[file_offset..file_offset + len]);
        let at = layout.rows_start + row * 24 + 20;
        bytes[at..at + 4].copy_from_slice(&crc.to_le_bytes());
    }
    let header_crc = crc32(&bytes[..layout.body_end]);
    bytes[layout.body_end..layout.body_end + 4].copy_from_slice(&header_crc.to_le_bytes());
}

fn skch_range(bytes: &[u8]) -> (usize, usize) {
    let layout = layout(bytes);
    let &(_, offset, len) = layout
        .sections
        .iter()
        .find(|(id, _, _)| id == b"SKCH")
        .expect("snapshot has a SKCH section");
    (offset, len)
}

/// A cursor over the `SKCH` wire format of a Thorup–Zwick snapshot,
/// yielding the file positions the targeted mutations need.
struct TzSketchCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

struct SketchSites {
    /// File offset of the sketch's `owner` field.
    owner_at: usize,
    /// `k` of this sketch.
    k: usize,
    /// File offset of each *present* pivot's distance field.
    pivot_distance_at: Vec<usize>,
    /// File offset of the first bunch entry (16 bytes per entry).
    bunch_at: usize,
    /// Number of bunch entries.
    bunch_len: usize,
}

impl<'a> TzSketchCursor<'a> {
    /// Position the cursor at the first sketch (skipping the set's count
    /// prefix) of the `SKCH` section.
    fn new(bytes: &'a [u8]) -> (Self, usize) {
        let (start, _) = skch_range(bytes);
        let count = le_u64(bytes, start) as usize;
        (
            TzSketchCursor {
                bytes,
                pos: start + 8,
            },
            count,
        )
    }

    /// Walk one sketch, returning its mutation sites.
    fn next_sketch(&mut self) -> SketchSites {
        let owner_at = self.pos;
        self.pos += 4;
        let k = le_u64(self.bytes, self.pos) as usize;
        self.pos += 8;
        let mut pivot_distance_at = Vec::new();
        for _ in 0..k {
            let present = self.bytes[self.pos] != 0;
            self.pos += 1;
            if present {
                pivot_distance_at.push(self.pos + 4);
                self.pos += 12;
            }
        }
        let bunch_len = le_u64(self.bytes, self.pos) as usize;
        self.pos += 8;
        let bunch_at = self.pos;
        self.pos += bunch_len * 16;
        SketchSites {
            owner_at,
            k,
            pivot_distance_at,
            bunch_at,
            bunch_len,
        }
    }

    /// File offset just past the last sketch — where the hierarchy starts.
    fn position(&self) -> usize {
        self.pos
    }
}

fn expect_kind(bytes: &[u8], kind: &str, what: &str) {
    match verify_snapshot_bytes(bytes) {
        Ok(_) => panic!("{what}: corrupted snapshot verified clean"),
        Err(e) => assert_eq!(e.kind(), kind, "{what}: wrong error: {e}"),
    }
}

// ---------------------------------------------------------------------------
// Valid snapshots pass, for every family (property-tested)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn every_family_snapshot_deep_verifies((n, seed) in (24usize..56, 0u64..1_000)) {
        for spec in SchemeSpec::all_families() {
            let bytes = snapshot_bytes(spec, n, seed);
            let report = verify_snapshot_bytes(&bytes)
                .unwrap_or_else(|e| panic!("{spec}: valid snapshot rejected: {e}"));
            prop_assert_eq!(report.nodes, n);
            prop_assert!(report.layers >= 1);
            prop_assert!(report.bunch_entries > 0, "{}: no bunch entries", spec);
            prop_assert!(
                report.sections.iter().any(|s| s.id == "SKCH"),
                "{}: no SKCH section reported", spec
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Unsigned corruption: every single-bit flip is rejected
// ---------------------------------------------------------------------------

#[test]
fn every_unsigned_bit_flip_is_rejected() {
    let bytes = snapshot_bytes(SchemeSpec::thorup_zwick(3), 32, 7);
    verify_snapshot_bytes(&bytes).unwrap();
    for at in 0..bytes.len() {
        let mut flipped = bytes.clone();
        flipped[at] ^= 0x01;
        assert!(
            verify_snapshot_bytes(&flipped).is_err(),
            "bit flip at byte {at} was accepted"
        );
    }
}

#[test]
fn every_truncation_is_rejected() {
    let bytes = snapshot_bytes(SchemeSpec::cdg(0.25, 2), 28, 3);
    for cut in 0..bytes.len() {
        assert!(
            verify_snapshot_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes was accepted"
        );
    }
}

// ---------------------------------------------------------------------------
// Signed corruption: the CRCs pass, only the semantic walk can object
// ---------------------------------------------------------------------------

#[test]
fn container_level_mutations_fail_with_their_own_kinds() {
    let bytes = snapshot_bytes(SchemeSpec::thorup_zwick(2), 32, 11);

    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'X';
    expect_kind(&bad_magic, "bad-magic", "magic");

    let mut future = bytes.clone();
    future[4..8].copy_from_slice(&99u32.to_le_bytes());
    expect_kind(&future, "unsupported-version", "version");

    // Flip one header-body byte without re-signing.
    let mut header_flip = bytes.clone();
    header_flip[16] ^= 0xFF;
    expect_kind(&header_flip, "header-checksum", "header flip");

    // Flip one payload byte without re-signing.
    let mut payload_flip = bytes.clone();
    let (skch_at, _) = skch_range(&bytes);
    payload_flip[skch_at] ^= 0xFF;
    expect_kind(&payload_flip, "section-checksum", "payload flip");

    expect_kind(&bytes[..40], "truncated", "truncation");

    // Extra payload bytes no section claims (signed: no CRC covers them).
    let mut trailing = bytes.clone();
    trailing.push(0xAB);
    expect_kind(&trailing, "trailing-bytes", "payload-area trailing bytes");
}

#[test]
fn missing_sketch_section_is_reported_as_such() {
    let contents = build_stored(
        &graph(24, 5),
        SchemeSpec::thorup_zwick(2),
        &SchemeConfig::default().with_seed(5).with_parallel_build(),
    )
    .unwrap();
    // A container with only the STAT section: structurally immaculate,
    // semantically useless.
    let mut writer = SnapshotWriter::new(contents.spec, contents.fingerprint);
    writer.add_section(
        SECTION_BUILD_STATS,
        contents.build_stats.unwrap().to_bytes(),
    );
    let mut bytes = Vec::new();
    writer.write_to(&mut bytes).unwrap();
    expect_kind(&bytes, "missing-section", "snapshot without SKCH");
}

/// Find the first sketch with at least two bunch entries and return its
/// mutation sites (every connected non-trivial graph has one).
fn first_sketch_with_bunch(bytes: &[u8]) -> SketchSites {
    let (mut cursor, count) = TzSketchCursor::new(bytes);
    for _ in 0..count {
        let sites = cursor.next_sketch();
        if sites.bunch_len >= 2 {
            return sites;
        }
    }
    panic!("no sketch with two bunch entries");
}

#[test]
fn resigned_bunch_order_violation_is_caught() {
    let mut bytes = snapshot_bytes(SchemeSpec::thorup_zwick(2), 32, 13);
    let sites = first_sketch_with_bunch(&bytes);
    // Swap the first two (16-byte) bunch entries: the decoded BTreeMap
    // would silently re-sort them — only the independent walk objects.
    let (a, b) = (sites.bunch_at, sites.bunch_at + 16);
    for i in 0..16 {
        bytes.swap(a + i, b + i);
    }
    resign(&mut bytes);
    expect_kind(&bytes, "bunch-order", "swapped bunch entries");
}

#[test]
fn resigned_bunch_level_violation_is_caught() {
    let mut bytes = snapshot_bytes(SchemeSpec::thorup_zwick(2), 32, 13);
    let sites = first_sketch_with_bunch(&bytes);
    // A bunch entry claiming level `k`: impossible, levels index A_0..A_{k-1}.
    let level_at = sites.bunch_at + 4;
    bytes[level_at..level_at + 4].copy_from_slice(&(sites.k as u32).to_le_bytes());
    resign(&mut bytes);
    expect_kind(&bytes, "bunch-level", "bunch level >= k");
}

#[test]
fn resigned_infinite_pivot_distance_is_caught() {
    let mut bytes = snapshot_bytes(SchemeSpec::thorup_zwick(2), 32, 13);
    let (mut cursor, count) = TzSketchCursor::new(&bytes);
    let mut site = None;
    for _ in 0..count {
        let sites = cursor.next_sketch();
        if let Some(&at) = sites.pivot_distance_at.first() {
            site = Some(at);
            break;
        }
    }
    let at = site.expect("a sketch with a present pivot");
    bytes[at..at + 8].copy_from_slice(&netgraph::INFINITY.to_le_bytes());
    resign(&mut bytes);
    expect_kind(&bytes, "pivot-row", "present pivot at infinite distance");
}

#[test]
fn resigned_decreasing_pivot_distances_are_caught() {
    let mut bytes = snapshot_bytes(SchemeSpec::thorup_zwick(3), 48, 17);
    let (mut cursor, count) = TzSketchCursor::new(&bytes);
    let mut site = None;
    for _ in 0..count {
        let sites = cursor.next_sketch();
        // Level 0's pivot is the node itself at distance 0, so the first
        // place monotonicity can break is between levels 1 and 2: find a
        // sketch with all three pivots present and a positive level-1
        // distance, then zero out level 2's.
        if sites.pivot_distance_at.len() >= 3 && le_u64(&bytes, sites.pivot_distance_at[1]) > 0 {
            site = Some(sites.pivot_distance_at[2]);
            break;
        }
    }
    let at = site.expect("a sketch with three present pivots and positive level-1 distance");
    bytes[at..at + 8].copy_from_slice(&0u64.to_le_bytes());
    resign(&mut bytes);
    expect_kind(&bytes, "pivot-row", "pivot distance decreasing in level");
}

#[test]
fn resigned_owner_mismatch_is_caught() {
    let mut bytes = snapshot_bytes(SchemeSpec::thorup_zwick(2), 32, 13);
    let (mut cursor, _) = TzSketchCursor::new(&bytes);
    let sites = cursor.next_sketch();
    // Sketch 0 claiming to be owned by node 5: indexing would silently
    // serve node 5's label for node 0's queries.
    bytes[sites.owner_at..sites.owner_at + 4].copy_from_slice(&5u32.to_le_bytes());
    resign(&mut bytes);
    expect_kind(&bytes, "section-decode", "sketch owner != node index");
}

#[test]
fn resigned_hierarchy_k_mismatch_is_caught() {
    let mut bytes = snapshot_bytes(SchemeSpec::thorup_zwick(2), 32, 13);
    let (mut cursor, count) = TzSketchCursor::new(&bytes);
    for _ in 0..count {
        cursor.next_sketch();
    }
    // The hierarchy trails the sketch set; its first field is k.
    let hierarchy_k_at = cursor.position();
    assert_eq!(le_u64(&bytes, hierarchy_k_at), 2, "hierarchy k field");
    bytes[hierarchy_k_at..hierarchy_k_at + 8].copy_from_slice(&3u64.to_le_bytes());
    resign(&mut bytes);
    expect_kind(&bytes, "hierarchy-contract", "hierarchy k != sketch k");
}

#[test]
fn resigned_spec_params_mismatch_is_caught() {
    let mut bytes = snapshot_bytes(SchemeSpec::cdg(0.25, 2), 28, 19);
    // The header spec is `tag u8, eps f64, k u64` at the top of the body:
    // nudge eps so it no longer matches the CdgParams stored in the
    // payload.  The header CRC is re-signed, so only the cross-check
    // between the two copies can object.
    assert_eq!(bytes[12], 2, "Cdg spec tag");
    let eps_at = 13;
    let eps = f64::from_le_bytes(bytes[eps_at..eps_at + 8].try_into().unwrap());
    assert_eq!(eps, 0.25);
    bytes[eps_at..eps_at + 8].copy_from_slice(&0.26f64.to_le_bytes());
    resign(&mut bytes);
    expect_kind(&bytes, "layer-contract", "header eps != stored CdgParams");
}

#[test]
fn resigned_trailing_bytes_inside_skch_are_caught() {
    let bytes = snapshot_bytes(SchemeSpec::thorup_zwick(2), 32, 13);
    let layout = layout(&bytes);
    let (skch_row, &(_, skch_at, skch_len)) = layout
        .sections
        .iter()
        .enumerate()
        .find(|(_, (id, _, _))| id == b"SKCH")
        .unwrap();
    // Splice one extra byte onto the end of the SKCH payload and grow its
    // declared length, shifting every later section's offset.
    let mut grown = bytes.clone();
    grown.insert(skch_at + skch_len, 0xEE);
    let len_at = layout.rows_start + skch_row * 24 + 12;
    let new_len = (skch_len + 1) as u64;
    grown[len_at..len_at + 8].copy_from_slice(&new_len.to_le_bytes());
    for (row, &(id, _, _)) in layout.sections.iter().enumerate() {
        if row > skch_row {
            let offset_at = layout.rows_start + row * 24 + 4;
            let offset = le_u64(&grown, offset_at) + 1;
            grown[offset_at..offset_at + 8].copy_from_slice(&offset.to_le_bytes());
            let _ = id;
        }
    }
    resign(&mut grown);
    expect_kind(&grown, "trailing-bytes", "extra byte inside SKCH");
}
