//! Cross-crate equivalence contract of the frozen flat query path: for
//! every sketch family, [`FlatSketchSet`] answers **identically** to the
//! `BTreeMap`-backed oracle it was frozen from — same estimates, same
//! errors, same label-size accounting — for every query function, on
//! random graphs, on disconnected graphs (the `NoCommonLandmark` cases),
//! and on hand-built labels with asymmetric per-node `k`.
//!
//! Also pins the store contract: materializing a `FlatSketchSet` straight
//! from `DSK1` snapshot bytes (`load_frozen_oracle`, the cold-start path
//! that never builds a `BTreeMap`) yields the same value as freezing the
//! decoded sketches.

use dsketch::prelude::*;
use dsketch_store::{build_stored, read_frozen_oracle, write_snapshot, StoredSketches};
use netgraph::builder::GraphBuilder;
use netgraph::generators::{erdos_renyi, GeneratorConfig};
use netgraph::{Graph, NodeId};
use proptest::prelude::*;

fn connected_graph(n: usize, seed: u64) -> Graph {
    erdos_renyi(n, 8.0 / n as f64, GeneratorConfig::uniform(seed, 1, 50))
}

/// Two Erdős–Rényi components with no edge between them: queries across
/// the cut have no common landmark for the slack families (and for TZ when
/// the sampled top level misses a component).
fn disconnected_graph(n1: usize, n2: usize, seed: u64) -> Graph {
    let a = connected_graph(n1, seed);
    let b = connected_graph(n2, seed ^ 0x5eed);
    let mut builder = GraphBuilder::new(n1 + n2);
    for (u, v, w) in a.undirected_edges() {
        builder.add_edge(u, v, w);
    }
    for (u, v, w) in b.undirected_edges() {
        builder.add_edge_idx(u.index() + n1, v.index() + n1, w);
    }
    builder.build()
}

/// Every pair over `0..n`, plus out-of-range probes so `UnknownNode`
/// propagation is part of the contract.
fn all_pairs(n: usize) -> Vec<(NodeId, NodeId)> {
    let mut pairs: Vec<(NodeId, NodeId)> = (0..n)
        .flat_map(|u| (0..n).map(move |v| (NodeId::from_index(u), NodeId::from_index(v))))
        .collect();
    pairs.push((NodeId::from_index(n), NodeId(0)));
    pairs.push((NodeId(0), NodeId::from_index(n + 3)));
    pairs
}

/// The core contract: the frozen set equals the map-backed oracle on every
/// query function, result-for-result (errors included).
fn assert_equivalent(
    spec: SchemeSpec,
    sketches: &StoredSketches,
    fingerprint: netgraph::GraphFingerprint,
    context: &str,
) {
    let oracle = sketches.as_oracle();
    let flat = sketches.freeze();
    let n = oracle.num_nodes();

    assert_eq!(flat.num_nodes(), n, "{context}");
    assert_eq!(flat.scheme_name(), oracle.scheme_name(), "{context}");
    assert_eq!(flat.stretch_bound(), oracle.stretch_bound(), "{context}");
    assert_eq!(flat.max_words(), oracle.max_words(), "{context}");
    assert_eq!(flat.total_words(), oracle.total_words(), "{context}");

    let pairs = all_pairs(n);
    for &(u, v) in &pairs {
        assert_eq!(
            flat.estimate(u, v),
            oracle.estimate(u, v),
            "{context}: {spec} flat estimate differs at ({u}, {v})"
        );
    }
    assert_eq!(
        flat.estimate_batch(&pairs),
        oracle.estimate_batch(&pairs),
        "{context}: {spec} batch answers differ"
    );
    for u in (0..n).map(NodeId::from_index) {
        assert_eq!(flat.words(u), oracle.words(u), "{context}: {spec} at {u}");
    }

    // Per-family raw query functions over the underlying label sets: both
    // the Lemma 3.2 walk and the best-common intersection must match their
    // slice reimplementations, whichever one the family's oracle uses.
    let raw_set = match sketches {
        StoredSketches::ThorupZwick(s) => Some(&s.sketches),
        StoredSketches::ThreeStretch(s) => Some(&s.sketches),
        StoredSketches::Cdg(s) => Some(&s.sketches),
        StoredSketches::Degrading(_) => None, // layered; covered via estimate()
    };
    if let Some(set) = raw_set {
        for u in (0..n).map(NodeId::from_index) {
            for v in (0..n).map(NodeId::from_index) {
                assert_eq!(
                    flat.estimate_walk(u, v),
                    dsketch::query::estimate_distance(set.sketch(u), set.sketch(v)),
                    "{context}: {spec} walk differs at ({u}, {v})"
                );
                assert_eq!(
                    flat.estimate_best_common(u, v),
                    dsketch::query::estimate_distance_best_common(set.sketch(u), set.sketch(v)),
                    "{context}: {spec} best-common differs at ({u}, {v})"
                );
            }
        }
    }

    // The store contract: snapshot bytes → FlatSketchSet directly (no
    // BTreeMap on the way) is the same oracle.
    let contents = dsketch_store::SnapshotContents {
        spec,
        fingerprint,
        sketches: sketches.clone(),
        build_stats: None,
    };
    let mut bytes = Vec::new();
    write_snapshot(&mut bytes, &contents).expect("serialize snapshot");
    let from_disk = read_frozen_oracle(bytes.as_slice()).expect("frozen load");
    for &(u, v) in &pairs {
        assert_eq!(
            from_disk.estimate(u, v),
            flat.estimate(u, v),
            "{context}: {spec} bytes-direct decode differs at ({u}, {v})"
        );
    }
    assert_eq!(from_disk.num_nodes(), flat.num_nodes(), "{context}");
    assert_eq!(from_disk.stretch_bound(), flat.stretch_bound(), "{context}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The acceptance-criterion property: on random connected graphs, every
    /// family's frozen oracle is answer-identical to the map path for every
    /// query function.
    #[test]
    fn flat_answers_are_identical_on_random_graphs(
        (n, seed) in (20usize..44, 0u64..1_000)
    ) {
        let g = connected_graph(n, seed);
        let config = SchemeConfig::default().with_seed(seed).with_parallel_build();
        for spec in SchemeSpec::all_families() {
            let contents = build_stored(&g, spec, &config).expect("construction");
            assert_equivalent(spec, &contents.sketches, g.fingerprint(), "connected");
        }
    }

    /// Disconnected graphs: cross-component queries surface
    /// `NoCommonLandmark`, and the flat path must reproduce those errors
    /// (with the same node order) exactly.
    #[test]
    fn flat_answers_are_identical_on_disconnected_graphs(
        (n1, n2, seed) in (10usize..22, 10usize..22, 0u64..1_000)
    ) {
        let g = disconnected_graph(n1, n2, seed);
        let config = SchemeConfig::default().with_seed(seed).with_parallel_build();
        let mut cross_errors = 0usize;
        for spec in SchemeSpec::all_families() {
            let contents = build_stored(&g, spec, &config).expect("construction");
            assert_equivalent(spec, &contents.sketches, g.fingerprint(), "disconnected");
            // Count the NoCommonLandmark cases so the property cannot
            // silently degenerate into never exercising the error path.
            let oracle = contents.sketches.as_oracle();
            cross_errors += (0..n1)
                .map(NodeId::from_index)
                .filter(|&u| {
                    matches!(
                        oracle.estimate(u, NodeId::from_index(n1 + n2 - 1)),
                        Err(SketchError::NoCommonLandmark { .. })
                    )
                })
                .count();
        }
        prop_assert!(
            cross_errors > 0,
            "disconnected components must produce NoCommonLandmark queries"
        );
    }
}

/// The asymmetric-`k` path: labels whose per-node level counts differ
/// (possible for hand-assembled or merged label sets) must walk the longer
/// pivot range, exactly like `estimate_distance`'s `k = max(ku, kv)`.
#[test]
fn asymmetric_k_labels_freeze_and_answer_identically() {
    // Node 0: k = 1.  Node 1: k = 3 with the shared landmark only at level
    // 2.  Node 2: k = 2, sharing a different landmark with both.
    let mut a = Sketch::new(NodeId(0), 1);
    a.set_pivot(0, NodeId(0), 0);
    a.insert_bunch(NodeId(0), 0, 0);
    a.insert_bunch(NodeId(9), 0, 2);
    a.insert_bunch(NodeId(7), 0, 4);
    let mut b = Sketch::new(NodeId(1), 3);
    b.set_pivot(0, NodeId(1), 0);
    b.set_pivot(2, NodeId(9), 3);
    b.insert_bunch(NodeId(1), 0, 0);
    b.insert_bunch(NodeId(9), 2, 3);
    let mut c = Sketch::new(NodeId(2), 2);
    c.set_pivot(0, NodeId(2), 0);
    c.set_pivot(1, NodeId(7), 1);
    c.insert_bunch(NodeId(2), 0, 0);
    c.insert_bunch(NodeId(7), 1, 1);
    let set = SketchSet::new(vec![a, b, c]);
    let flat = set.freeze();

    for u in (0..3).map(NodeId::from_index) {
        for v in (0..3).map(NodeId::from_index) {
            assert_eq!(
                flat.estimate_walk(u, v),
                dsketch::query::estimate_distance(set.sketch(u), set.sketch(v)),
                "walk differs at ({u}, {v})"
            );
            assert_eq!(
                flat.estimate_best_common(u, v),
                dsketch::query::estimate_distance_best_common(set.sketch(u), set.sketch(v)),
                "best-common differs at ({u}, {v})"
            );
            assert_eq!(
                flat.estimate(u, v),
                DistanceOracle::estimate(&set, u, v),
                "oracle estimate differs at ({u}, {v})"
            );
        }
    }
    // The walk really does cross the k boundary: (0, 1) answers at level 2
    // of the longer side.
    assert_eq!(flat.estimate_walk(NodeId(0), NodeId(1)).unwrap(), 5);
}

/// Frozen builds through the type-erased builder answer like unfrozen ones
/// under the serve layer's batch API (the end-to-end wiring of the
/// `frozen` toggle).
#[test]
fn frozen_builder_output_serves_identically() {
    let g = connected_graph(40, 3);
    for spec in SchemeSpec::all_families() {
        let plain = SketchBuilder::new(spec).seed(8).build(&g).unwrap();
        let frozen = SketchBuilder::new(spec)
            .seed(8)
            .frozen(true)
            .build(&g)
            .unwrap();
        let pairs = all_pairs(40);
        assert_eq!(
            plain.sketches.estimate_batch(&pairs),
            frozen.sketches.estimate_batch(&pairs),
            "{spec}"
        );
    }
}
