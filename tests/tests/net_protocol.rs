//! Protocol battery for the network front end: every frame type
//! round-trips, and *no* malformed input — truncation at any byte,
//! oversized length prefixes, bit-flipped headers, garbage HTTP — can
//! panic the server, hang a connection past its deadline, or stall other
//! connections.

use dsketch::prelude::*;
use dsketch_serve::net::protocol::{
    frame_bytes, parse_header, DEFAULT_MAX_PAYLOAD, HEADER_LEN, REQUEST_MAGIC, RESPONSE_MAGIC,
};
use dsketch_serve::{
    net::{Request, Response, WireError, WireErrorCode},
    NetClient, NetConfig, NetServer, ServeConfig,
};
use netgraph::generators::{erdos_renyi, GeneratorConfig};
use netgraph::NodeId;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Round-trips: every frame kind, random contents.

/// Encode one frame and decode it back through the public header parser.
fn reencode_request(request: &Request) -> Request {
    let frame = request.to_frame();
    let header = parse_header(
        frame[..HEADER_LEN].try_into().expect("header slice"),
        REQUEST_MAGIC,
        DEFAULT_MAX_PAYLOAD,
    )
    .expect("well-formed header");
    assert_eq!(header.payload_len as usize, frame.len() - HEADER_LEN);
    Request::decode(header.kind, &frame[HEADER_LEN..]).expect("well-formed payload")
}

fn reencode_response(response: &Response) -> Response {
    let frame = response.to_frame();
    let header = parse_header(
        frame[..HEADER_LEN].try_into().expect("header slice"),
        RESPONSE_MAGIC,
        DEFAULT_MAX_PAYLOAD,
    )
    .expect("well-formed header");
    Response::decode(header.kind, &frame[HEADER_LEN..]).expect("well-formed payload")
}

/// Map a numeric selector onto an error code (the shim proptest has no
/// enum strategy).
fn code_of(selector: u32) -> WireErrorCode {
    match selector % 6 {
        0 => WireErrorCode::UnknownNode,
        1 => WireErrorCode::NoCommonLandmark,
        2 => WireErrorCode::BadFrame,
        3 => WireErrorCode::BatchTooLarge,
        4 => WireErrorCode::ShuttingDown,
        _ => WireErrorCode::Internal,
    }
}

/// Build a printable-ish detail string (including quotes and newlines, the
/// characters a JSON embedding must survive) from random bytes.
fn detail_of(bytes: &[u32]) -> String {
    bytes
        .iter()
        .map(|b| char::from_u32(0x20 + b % 0x60).unwrap_or('?'))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn single_queries_round_trip(u in 0u32..=u32::MAX, v in 0u32..=u32::MAX) {
        let request = Request::Query { u: NodeId(u), v: NodeId(v) };
        prop_assert_eq!(reencode_request(&request), request);
    }

    #[test]
    fn batches_round_trip(raw in prop::collection::vec((0u32..=u32::MAX, 0u32..=u32::MAX), 0..40)) {
        let pairs: Vec<(NodeId, NodeId)> =
            raw.into_iter().map(|(u, v)| (NodeId(u), NodeId(v))).collect();
        let request = Request::QueryBatch { pairs };
        prop_assert_eq!(reencode_request(&request), request);
    }

    #[test]
    fn distances_round_trip(d in 0u64..=u64::MAX) {
        let response = Response::Distance(d);
        prop_assert_eq!(reencode_response(&response), response);
    }

    #[test]
    fn batch_responses_round_trip(
        raw in prop::collection::vec((0u64..=u64::MAX, 0u32..8, prop::collection::vec(0u32..256, 0..20)), 0..24),
    ) {
        let results: Vec<Result<u64, WireError>> = raw
            .into_iter()
            .map(|(d, selector, detail)| {
                if selector < 6 {
                    Err(WireError::new(code_of(selector), detail_of(&detail)))
                } else {
                    Ok(d)
                }
            })
            .collect();
        let response = Response::Batch(results);
        prop_assert_eq!(reencode_response(&response), response);
    }

    #[test]
    fn error_and_stats_frames_round_trip(
        selector in 0u32..6,
        detail in prop::collection::vec(0u32..256, 0..64),
    ) {
        let error = Response::Error(WireError::new(code_of(selector), detail_of(&detail)));
        prop_assert_eq!(reencode_response(&error), error);
        let stats = Response::Stats(format!("{{\"x\":\"{}\"}}", detail_of(&detail).replace('"', "'")));
        prop_assert_eq!(reencode_response(&stats), stats);
    }

    #[test]
    fn control_frames_round_trip(_x in 0u32..1) {
        prop_assert_eq!(reencode_request(&Request::Ping), Request::Ping);
        prop_assert_eq!(reencode_request(&Request::Stats), Request::Stats);
        prop_assert_eq!(reencode_response(&Response::Pong), Response::Pong);
    }

    #[test]
    fn random_payload_bytes_never_panic_the_decoders(
        kind in 0u32..256,
        payload in prop::collection::vec(0u32..256, 0..64),
    ) {
        let bytes: Vec<u8> = payload.iter().map(|&b| b as u8).collect();
        // Any outcome is fine except a panic.
        let _ = Request::decode(kind as u8, &bytes);
        let _ = Response::decode(kind as u8, &bytes);
    }
}

// ---------------------------------------------------------------------------
// The malformed-input sweep, against a live server.

struct Fixture {
    server: NetServer,
    oracle: Arc<dyn DistanceOracle>,
    n: usize,
}

impl Fixture {
    fn start() -> Fixture {
        let n = 32;
        let graph = erdos_renyi(n, 0.2, GeneratorConfig::uniform(5, 1, 20));
        let outcome = SketchBuilder::thorup_zwick(2)
            .seed(3)
            .build(&graph)
            .expect("construction");
        let oracle: Arc<dyn DistanceOracle> = Arc::from(outcome.sketches);
        let server = NetServer::start(
            Arc::clone(&oracle),
            ServeConfig::default().with_shards(2),
            NetConfig::default()
                .with_workers(2)
                .with_read_timeout(Duration::from_millis(1500)),
            "127.0.0.1:0",
        )
        .expect("server start");
        Fixture { server, oracle, n }
    }

    fn addr(&self) -> String {
        self.server.local_addr().to_string()
    }

    /// A healthy client must get correct answers — called after every abuse
    /// to prove the server survived it.
    fn assert_still_healthy(&self) {
        let mut client =
            NetClient::connect(&self.addr(), Duration::from_secs(5)).expect("healthy connect");
        client.ping().expect("healthy ping");
        for i in 0..8u32 {
            let (u, v) = (
                NodeId(i % self.n as u32),
                NodeId((i * 7 + 1) % self.n as u32),
            );
            let wire = client.query(u, v).expect("healthy transport");
            match (wire, self.oracle.estimate(u, v)) {
                (Ok(w), Ok(d)) => assert_eq!(w, d, "wire answer must equal direct"),
                (Err(_), Err(_)) => {}
                (w, d) => panic!("wire {w:?} disagrees with direct {d:?}"),
            }
        }
    }
}

/// What one raw write provoked.
#[derive(Debug)]
enum Provoked {
    /// The server closed without replying.
    Closed,
    /// The server replied with bytes (for binary abuse: a `NETR` error
    /// frame; for HTTP abuse: a status line).
    Reply(Vec<u8>),
}

/// Write `bytes`, half-close, and read whatever the server sends back,
/// bounded by `deadline_ms` — a stall past the bound fails the test.
fn provoke(addr: &str, bytes: &[u8], deadline_ms: u64) -> Provoked {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_millis(deadline_ms)))
        .expect("timeout");
    // The peer may already have replied and closed; a send error is fine.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let started = Instant::now();
    let mut reply = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        assert!(
            started.elapsed() < Duration::from_millis(deadline_ms + 2_000),
            "server stalled a malformed connection past its deadline"
        );
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(got) => reply.extend_from_slice(&chunk[..got]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break;
            }
            Err(_) => break,
        }
    }
    if reply.is_empty() {
        Provoked::Closed
    } else {
        Provoked::Reply(reply)
    }
}

/// Decode a reply as a typed `NETR` error frame, if that is what it is.
fn as_error_frame(reply: &[u8]) -> Option<WireError> {
    if reply.len() < HEADER_LEN {
        return None;
    }
    let header = parse_header(
        reply[..HEADER_LEN].try_into().ok()?,
        RESPONSE_MAGIC,
        DEFAULT_MAX_PAYLOAD,
    )
    .ok()?;
    match Response::decode(header.kind, &reply[HEADER_LEN..]).ok()? {
        Response::Error(e) => Some(e),
        _ => None,
    }
}

#[test]
fn truncations_at_every_length_get_typed_errors_or_clean_closes() {
    let fixture = Fixture::start();
    let addr = fixture.addr();
    let frames = [
        Request::Query {
            u: NodeId(1),
            v: NodeId(2),
        }
        .to_frame(),
        Request::QueryBatch {
            pairs: vec![(NodeId(3), NodeId(4)), (NodeId(5), NodeId(6))],
        }
        .to_frame(),
    ];
    for frame in &frames {
        for cut in 0..frame.len() {
            match provoke(&addr, &frame[..cut], 3_000) {
                Provoked::Closed => {}
                Provoked::Reply(reply) => {
                    // A cut inside the payload after a valid header may
                    // never produce a reply (the frame just ends early);
                    // any reply must be a typed error frame.
                    let error = as_error_frame(&reply)
                        .unwrap_or_else(|| panic!("cut {cut}: non-error reply {reply:?}"));
                    assert_eq!(error.code, WireErrorCode::BadFrame, "cut {cut}");
                }
            }
        }
    }
    fixture.assert_still_healthy();
    let stats = fixture.server.shutdown();
    assert_eq!(stats.net.connections_refused, 0);
}

#[test]
fn oversized_length_prefixes_are_rejected_before_allocation() {
    let fixture = Fixture::start();
    let addr = fixture.addr();
    for claimed in [DEFAULT_MAX_PAYLOAD + 1, u32::MAX / 2, u32::MAX] {
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&REQUEST_MAGIC);
        header.push(1); // version
        header.push(1); // kind: query
        header.extend_from_slice(&0u16.to_le_bytes());
        header.extend_from_slice(&claimed.to_le_bytes());
        match provoke(&addr, &header, 3_000) {
            Provoked::Reply(reply) => {
                let error = as_error_frame(&reply).expect("typed error frame");
                assert_eq!(error.code, WireErrorCode::BadFrame);
                assert!(
                    error.detail.contains("exceeds"),
                    "detail should name the bound: {}",
                    error.detail
                );
            }
            Provoked::Closed => panic!("oversized prefix should earn a typed error first"),
        }
    }
    fixture.assert_still_healthy();
    fixture.server.shutdown();
}

#[test]
fn bit_flipped_headers_never_panic_or_hang() {
    let fixture = Fixture::start();
    let addr = fixture.addr();
    let good = Request::Query {
        u: NodeId(1),
        v: NodeId(2),
    }
    .to_frame();
    for byte in 0..HEADER_LEN {
        for bit in 0..8 {
            let mut frame = good.clone();
            frame[byte] ^= 1 << bit;
            match provoke(&addr, &frame, 3_000) {
                Provoked::Closed => {}
                Provoked::Reply(reply) => {
                    // Magic-byte flips route the connection to the HTTP
                    // sniffer, which closes silently; every other header
                    // flip that earns any reply must lead with a typed
                    // error frame (a shrunk length prefix may append a
                    // second error frame for the now-misaligned remainder —
                    // the leading frame is what matters).
                    assert!(
                        as_error_frame(&reply).is_some(),
                        "byte {byte} bit {bit}: reply is not a typed error frame: {reply:?}"
                    );
                }
            }
        }
    }
    fixture.assert_still_healthy();
    fixture.server.shutdown();
}

#[test]
fn garbage_http_request_lines_get_4xx_not_crashes() {
    let fixture = Fixture::start();
    let addr = fixture.addr();
    // (raw request, expected status, is the failure at the request-line
    // level?)  Request-line failures count as `protocol_errors`; anything
    // that parses far enough to route counts as an `http_request`.
    let cases: &[(&[u8], &str, bool)] = &[
        (b"GET\r\n\r\n", "400", true),
        // POST parses at the request-line level (the swap route needs it);
        // a POST to a read-only path routes far enough to earn a 405.
        (b"POST /distance?u=1&v=2 HTTP/1.1\r\n\r\n", "405", false),
        (b"FOO BAR BAZ QUX\r\n\r\n", "400", true),
        (b"GET /nope HTTP/1.1\r\n\r\n", "404", false),
        (b"GET /distance HTTP/1.1\r\n\r\n", "400", false),
        (b"GET /distance?u=&v=2 HTTP/1.1\r\n\r\n", "400", false),
        (b"GET /distance?u=abc&v=2 HTTP/1.1\r\n\r\n", "400", false),
        (
            b"GET /distance?u=4294967296&v=2 HTTP/1.1\r\n\r\n",
            "400",
            false,
        ),
        (b"GET /distance?u=1&w=2 HTTP/1.1\r\n\r\n", "400", false),
        (b"GET /stats SPDY/9\r\n\r\n", "400", true),
        (
            b"\xff\xfe\xfd\xfc binary garbage, not NETQ\r\n\r\n",
            "400",
            true,
        ),
    ];
    for (bytes, status, _) in cases {
        match provoke(&addr, bytes, 3_000) {
            Provoked::Reply(reply) => {
                let text = String::from_utf8_lossy(&reply);
                assert!(
                    text.starts_with(&format!("HTTP/1.1 {status}")),
                    "{:?} should earn {status}, got: {text}",
                    String::from_utf8_lossy(bytes)
                );
                assert!(text.contains("\"error\""), "error body is JSON: {text}");
            }
            Provoked::Closed => panic!(
                "{:?}: expected an HTTP error reply, got a bare close",
                String::from_utf8_lossy(bytes)
            ),
        }
    }
    fixture.assert_still_healthy();
    let stats = fixture.server.shutdown();
    let line_failures = cases.iter().filter(|(_, _, line)| *line).count() as u64;
    let routed = cases.len() as u64 - line_failures;
    assert_eq!(
        stats.net.protocol_errors, line_failures,
        "each unparsable request line counts once: {stats:?}"
    );
    assert_eq!(
        stats.net.http_requests, routed,
        "each routable request counts once: {stats:?}"
    );
}

/// Unknown binary frame kinds and undecodable payloads keep the connection
/// alive (framing is intact) — the same socket answers real queries after
/// the typed error.
#[test]
fn payload_errors_keep_the_connection_usable() {
    let fixture = Fixture::start();
    let addr = fixture.addr();
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");

    // Unknown kind byte.
    stream
        .write_all(&frame_bytes(REQUEST_MAGIC, 9, &[]))
        .expect("write");
    let mut reply = vec![0u8; HEADER_LEN];
    stream.read_exact(&mut reply).expect("error header");
    let header = parse_header(
        reply[..HEADER_LEN].try_into().expect("header"),
        RESPONSE_MAGIC,
        DEFAULT_MAX_PAYLOAD,
    )
    .expect("valid reply header");
    let mut payload = vec![0u8; header.payload_len as usize];
    stream.read_exact(&mut payload).expect("error payload");
    match Response::decode(header.kind, &payload).expect("decodes") {
        Response::Error(e) => assert_eq!(e.code, WireErrorCode::BadFrame),
        other => panic!("expected error frame, got {other:?}"),
    }

    // Truncated query payload inside a well-framed envelope (3 bytes where
    // 8 are needed).
    stream
        .write_all(&frame_bytes(REQUEST_MAGIC, 1, &[1, 2, 3]))
        .expect("write");
    let mut reply = vec![0u8; HEADER_LEN];
    stream.read_exact(&mut reply).expect("second error header");

    // ... and the same connection still answers a real query.
    let mut payload = vec![
        0u8;
        parse_header(
            reply[..HEADER_LEN].try_into().expect("header"),
            RESPONSE_MAGIC,
            DEFAULT_MAX_PAYLOAD
        )
        .expect("valid header")
        .payload_len as usize
    ];
    stream
        .read_exact(&mut payload)
        .expect("second error payload");
    stream
        .write_all(
            &Request::Query {
                u: NodeId(0),
                v: NodeId(1),
            }
            .to_frame(),
        )
        .expect("real query");
    let mut reply = vec![0u8; HEADER_LEN];
    stream.read_exact(&mut reply).expect("answer header");
    let header = parse_header(
        reply[..HEADER_LEN].try_into().expect("header"),
        RESPONSE_MAGIC,
        DEFAULT_MAX_PAYLOAD,
    )
    .expect("valid answer header");
    let mut payload = vec![0u8; header.payload_len as usize];
    stream.read_exact(&mut payload).expect("answer payload");
    match Response::decode(header.kind, &payload).expect("decodes") {
        Response::Distance(d) => {
            assert_eq!(
                Ok(d),
                fixture.oracle.estimate(NodeId(0), NodeId(1)),
                "post-error answers still match direct calls"
            );
        }
        other => panic!("expected a distance, got {other:?}"),
    }

    drop(stream);
    fixture.assert_still_healthy();
    fixture.server.shutdown();
}

/// While one connection feeds the server malformed frames, a healthy
/// connection's queries keep completing with correct answers.
#[test]
fn malformed_traffic_does_not_stall_other_connections() {
    let fixture = Fixture::start();
    let addr = fixture.addr();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let abuser_addr = addr.clone();
    let abuser_stop = Arc::clone(&stop);
    let abuser = std::thread::spawn(move || {
        let mut round = 0u8;
        while !abuser_stop.load(std::sync::atomic::Ordering::Relaxed) {
            let garbage = [round; 16];
            let _ = provoke(&abuser_addr, &garbage, 2_500);
            round = round.wrapping_add(1);
        }
    });

    let mut client = NetClient::connect(&addr, Duration::from_secs(5)).expect("connect");
    for i in 0..60u32 {
        let (u, v) = (NodeId(i % 32), NodeId((i * 5 + 2) % 32));
        let started = Instant::now();
        let wire = client.query(u, v).expect("healthy queries must not fail");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "query {i} stalled behind malformed traffic"
        );
        match (wire, fixture.oracle.estimate(u, v)) {
            (Ok(w), Ok(d)) => assert_eq!(w, d),
            (Err(_), Err(_)) => {}
            (w, d) => panic!("wire {w:?} vs direct {d:?}"),
        }
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    abuser.join().expect("abuser thread");
    drop(client);
    fixture.server.shutdown();
}
