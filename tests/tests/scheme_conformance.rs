//! Scheme conformance suite: every [`SchemeSpec`] family must satisfy, via
//! the `DistanceOracle` trait alone, the contract the unified API promises —
//! estimates are upper bounds, the paper's stretch bound holds on the pairs
//! it covers, size accounting is consistent, and builds are deterministic in
//! the seed.
//!
//! Per-family stretch contracts (on a connected weighted Erdős–Rényi graph):
//!
//! * `tz:k` — `estimate ≤ (2k − 1) · d(u, v)` for **every** pair (Thm 1.1)
//! * `3stretch:ε` — `estimate ≤ 3 · d(u, v)` for every ε-far pair (Thm 4.3)
//! * `cdg:ε,k` — `estimate ≤ (8k − 1) · d(u, v)` for every ε-far pair (Thm 4.6)
//! * `degrading` — `estimate ≤ (8k_i − 1) · d(u, v)` for every pair that is
//!   ε_i-far at some layer i; plus O(1)-ish average stretch (Thm 4.8 / Cor 4.9)

use dsketch::prelude::*;
use netgraph::apsp::DistanceTable;
use netgraph::generators::{erdos_renyi, GeneratorConfig};
use netgraph::{Graph, NodeId};

/// The conformance workload: small, connected, weighted.
fn workload() -> Graph {
    erdos_renyi(80, 0.1, GeneratorConfig::uniform(19, 1, 25))
}

/// The slack parameter a spec's guarantee is stated for, if any.
fn slack_of(spec: &SchemeSpec) -> Option<f64> {
    match *spec {
        SchemeSpec::ThorupZwick { .. } | SchemeSpec::Degrading { .. } => None,
        SchemeSpec::ThreeStretch { eps } => Some(eps),
        SchemeSpec::Cdg { eps, .. } => Some(eps),
    }
}

#[test]
fn estimates_are_upper_bounds_for_every_family() {
    let graph = workload();
    let table = DistanceTable::exact(&graph);
    for spec in SchemeSpec::all_families() {
        let outcome = SketchBuilder::new(spec).seed(3).build(&graph).unwrap();
        for (u, v, exact) in table.pairs() {
            match outcome.sketches.estimate(u, v) {
                Ok(est) => assert!(
                    est >= exact,
                    "[{spec}] underestimate for ({u},{v}): {est} < {exact}"
                ),
                // A missing estimate is only acceptable for pairs the slack
                // guarantee does not cover.
                Err(_) => {
                    let eps = slack_of(&spec).expect("only slack schemes may fail");
                    assert!(
                        !table.is_eps_far(u, v, eps),
                        "[{spec}] no estimate for covered pair ({u},{v})"
                    );
                }
            }
        }
    }
}

#[test]
fn stretch_bound_holds_on_covered_pairs_for_every_family() {
    let graph = workload();
    let table = DistanceTable::exact(&graph);
    for spec in SchemeSpec::all_families() {
        let outcome = SketchBuilder::new(spec).seed(5).build(&graph).unwrap();
        let oracle = &outcome.sketches;
        let Some(bound) = oracle.stretch_bound() else {
            continue; // the degrading curve is checked separately below
        };
        let eps = slack_of(&spec);
        for (u, v, exact) in table.pairs() {
            let covered = eps.is_none_or(|e| table.is_eps_far(u, v, e));
            if !covered {
                continue;
            }
            let est = oracle
                .estimate(u, v)
                .unwrap_or_else(|e| panic!("[{spec}] covered pair ({u},{v}) failed: {e}"));
            assert!(
                est <= bound * exact,
                "[{spec}] stretch bound {bound} violated for ({u},{v}): {est} vs {exact}"
            );
        }
    }
}

#[test]
fn degrading_stretch_degrades_gracefully() {
    let graph = workload();
    let table = DistanceTable::exact(&graph);
    let spec = SchemeSpec::Degrading {
        max_layers: None,
        max_k: Some(3),
    };
    let outcome = SketchBuilder::new(spec).seed(7).build(&graph).unwrap();

    // Theorem 4.8's contract: for every ε_i = 2^{-i}, every ε_i-far pair is
    // estimated within the layer's 8k_i − 1 bound (the union query can only
    // improve on the layer that guarantees it).
    let n = graph.num_nodes();
    let layers = ((n as f64).log2().ceil() as usize).max(1);
    let mut total = 0.0;
    let mut count = 0usize;
    for (u, v, exact) in table.pairs() {
        let est = outcome.sketches.estimate(u, v).unwrap();
        for i in 1..=layers {
            let eps_i = 0.5f64.powi(i as i32);
            let k_i = i.clamp(1, 3);
            if table.is_eps_far(u, v, eps_i) {
                let bound = (8 * k_i - 1) as u64;
                assert!(
                    est <= bound * exact,
                    "layer ε={eps_i} bound {bound} violated for ({u},{v}): {est} vs {exact}"
                );
                break; // the tightest applicable layer suffices
            }
        }
        total += est as f64 / exact.max(1) as f64;
        count += 1;
    }
    // Corollary 4.9: constant average stretch (generously: < 4 at n = 80).
    let avg = total / count as f64;
    assert!(avg < 4.0, "average stretch too large: {avg}");
}

#[test]
fn size_accounting_is_consistent_for_every_family() {
    let graph = workload();
    for spec in SchemeSpec::all_families() {
        let outcome = SketchBuilder::new(spec).seed(11).build(&graph).unwrap();
        let oracle = &outcome.sketches;
        assert_eq!(oracle.num_nodes(), graph.num_nodes(), "{spec}");
        let per_node: Vec<usize> = graph.nodes().map(|u| oracle.words(u)).collect();
        let max = per_node.iter().copied().max().unwrap();
        let total: usize = per_node.iter().sum();
        assert_eq!(oracle.max_words(), max, "{spec}");
        assert_eq!(oracle.total_words(), total, "{spec}");
        assert!(
            (oracle.avg_words() - total as f64 / 80.0).abs() < 1e-9,
            "{spec}"
        );
        assert!(max > 0, "{spec}");
    }
}

#[test]
fn unknown_nodes_are_rejected_for_every_family() {
    let graph = workload();
    for spec in SchemeSpec::all_families() {
        let outcome = SketchBuilder::new(spec).seed(13).build(&graph).unwrap();
        let bad = NodeId(10_000);
        assert!(
            matches!(
                outcome.sketches.estimate(NodeId(0), bad),
                Err(SketchError::UnknownNode(b)) if b == bad
            ),
            "{spec}"
        );
    }
}

#[test]
fn builds_are_deterministic_in_the_seed_for_every_family() {
    let graph = workload();
    for spec in SchemeSpec::all_families() {
        let a = SketchBuilder::new(spec).seed(17).build(&graph).unwrap();
        let b = SketchBuilder::new(spec).seed(17).build(&graph).unwrap();
        assert_eq!(a.stats, b.stats, "{spec}");
        for u in graph.nodes() {
            assert_eq!(a.sketches.words(u), b.sketches.words(u), "{spec}");
            for v in graph.nodes().step_by(7) {
                assert_eq!(
                    a.sketches.estimate(u, v).ok(),
                    b.sketches.estimate(u, v).ok(),
                    "{spec} ({u},{v})"
                );
            }
        }
    }
}

#[test]
fn self_distance_is_zero_for_every_family() {
    let graph = workload();
    for spec in SchemeSpec::all_families() {
        let outcome = SketchBuilder::new(spec).seed(19).build(&graph).unwrap();
        for u in graph.nodes().step_by(11) {
            assert_eq!(outcome.sketches.estimate(u, u).unwrap(), 0, "{spec}");
        }
    }
}
