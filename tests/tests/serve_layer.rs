//! Integration tests for the `dsketch-serve` layer: the sharded server must
//! be a transparent proxy for the oracle it serves — same answers, same
//! errors — under concurrency, batching, and caching, for every scheme
//! family.

use dsketch::prelude::*;
use dsketch_serve::{ServeConfig, SketchServer};
use netgraph::generators::{erdos_renyi, GeneratorConfig};
use netgraph::NodeId;
use std::sync::Arc;

fn build_oracle(spec: SchemeSpec, n: usize) -> Arc<dyn DistanceOracle> {
    let graph = erdos_renyi(n, 0.15, GeneratorConfig::uniform(7, 1, 20));
    let outcome = SketchBuilder::new(spec)
        .seed(11)
        .build(&graph)
        .expect("construction");
    Arc::from(outcome.sketches)
}

/// A deterministic query stream, including out-of-range nodes so error
/// propagation is exercised alongside successful estimates.
fn query_stream(n: usize, count: usize, salt: u64) -> Vec<(NodeId, NodeId)> {
    (0..count as u64)
        .map(|i| {
            let a = (i.wrapping_mul(6364136223846793005).wrapping_add(salt) >> 16) as usize;
            let b = (i
                .wrapping_mul(2862933555777941757)
                .wrapping_add(salt ^ 0xabcd)
                >> 16) as usize;
            // Every 97th query asks about a node outside the sketch set.
            let u = if i % 97 == 0 { n + a % 5 } else { a % n };
            (NodeId::from_index(u), NodeId::from_index(b % n))
        })
        .collect()
}

/// The acceptance-criterion test: for all four scheme families, N client
/// threads × M queries each through the sharded server return exactly what
/// direct `estimate()` calls return — including errors.
#[test]
fn concurrent_queries_agree_with_direct_estimates_for_every_family() {
    const THREADS: usize = 4;
    const QUERIES_PER_THREAD: usize = 400;
    for spec in SchemeSpec::all_families() {
        let n = 48;
        let oracle = build_oracle(spec, n);
        let server = SketchServer::start(
            Arc::clone(&oracle),
            ServeConfig::default()
                .with_shards(4)
                .with_cache_capacity(64),
        )
        .expect("server start");
        std::thread::scope(|scope| {
            for thread_id in 0..THREADS {
                let client = server.client();
                let oracle = Arc::clone(&oracle);
                scope.spawn(move || {
                    for (u, v) in query_stream(n, QUERIES_PER_THREAD, thread_id as u64) {
                        assert_eq!(
                            client.query(u, v),
                            oracle.estimate(u, v),
                            "{spec}: server must answer ({u}, {v}) like the oracle"
                        );
                    }
                });
            }
        });
        let stats = server.shutdown();
        assert_eq!(
            stats.totals.queries,
            (THREADS * QUERIES_PER_THREAD) as u64,
            "{spec}: every query must be counted"
        );
        assert_eq!(
            stats.totals.cache_hits + stats.totals.cache_misses,
            stats.totals.queries,
            "{spec}: every query is either a hit or a miss"
        );
        assert!(
            stats.per_shard.iter().all(|s| s.queries > 0),
            "{spec}: all shards should see traffic: {stats}"
        );
    }
}

/// Batched submission must return the same results as one-at-a-time
/// submission, in input order, mixing shards, duplicates and errors.
#[test]
fn batched_and_single_queries_are_equivalent() {
    let n = 40;
    let oracle = build_oracle(SchemeSpec::thorup_zwick(3), n);
    let server =
        SketchServer::start(Arc::clone(&oracle), ServeConfig::default()).expect("server start");
    let client = server.client();
    let mut pairs = query_stream(n, 300, 5);
    pairs.push(pairs[0]); // duplicate within one batch
    let batched = client.query_batch(&pairs);
    assert_eq!(batched.len(), pairs.len());
    for (result, &(u, v)) in batched.iter().zip(&pairs) {
        assert_eq!(
            result,
            &client.query(u, v),
            "order-preserving at ({u}, {v})"
        );
        assert_eq!(result, &oracle.estimate(u, v));
    }
}

/// The per-shard LRU accounting: repeats hit, distinct queries miss, errors
/// are never cached, and the hit/miss split is exact.
#[test]
fn cache_hit_accounting_is_exact() {
    let n = 40;
    let oracle = build_oracle(SchemeSpec::thorup_zwick(2), n);
    let server = SketchServer::start(
        Arc::clone(&oracle),
        ServeConfig::default().with_cache_capacity(1024),
    )
    .expect("server start");
    let client = server.client();

    // The same query 10 times: 1 miss then 9 hits.
    for _ in 0..10 {
        client.query(NodeId(3), NodeId(7)).unwrap();
    }
    let stats = server.stats();
    assert_eq!(stats.totals.queries, 10);
    assert_eq!(stats.totals.cache_misses, 1);
    assert_eq!(stats.totals.cache_hits, 9);

    // A failing query repeated: errors are not cached, so every repeat
    // consults the oracle again.
    for _ in 0..5 {
        assert!(client.query(NodeId(999), NodeId(0)).is_err());
    }
    let stats = server.stats();
    assert_eq!(stats.totals.errors, 5);
    assert_eq!(stats.totals.cache_misses, 6, "failed queries never cache");
    assert_eq!(stats.totals.cache_hits, 9);

    // 30 distinct pairs never repeat: all misses.
    let distinct: Vec<(NodeId, NodeId)> = (0..30u32)
        .map(|i| (NodeId(i), NodeId((i + 1) % n as u32)))
        .collect();
    for result in client.query_batch(&distinct) {
        result.unwrap();
    }
    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.totals.queries, 45);
    assert_eq!(stats.totals.cache_misses, 36);
    assert_eq!(stats.totals.cache_hits, 9);
    assert!(stats.totals.busy_nanos > 0, "latency is being measured");
}

/// A cache-disabled server (capacity 0) still answers correctly and reports
/// zero hits.
#[test]
fn zero_capacity_cache_disables_hits_not_answers() {
    let n = 32;
    let oracle = build_oracle(SchemeSpec::three_stretch(0.4), n);
    let server = SketchServer::start(
        Arc::clone(&oracle),
        ServeConfig::default().with_cache_capacity(0),
    )
    .expect("server start");
    let client = server.client();
    for _ in 0..3 {
        assert_eq!(
            client.query(NodeId(0), NodeId(9)),
            oracle.estimate(NodeId(0), NodeId(9))
        );
    }
    drop(client);
    let stats = server.shutdown();
    assert_eq!(stats.totals.cache_hits, 0);
    assert_eq!(stats.totals.cache_misses, 3);
}

/// `estimate_batch` on the trait (the default implementation every oracle
/// inherits) agrees with the serving path.
#[test]
fn trait_level_batching_matches_server_batching() {
    let n = 40;
    let oracle = build_oracle(SchemeSpec::cdg(0.3, 2), n);
    let server =
        SketchServer::start(Arc::clone(&oracle), ServeConfig::default()).expect("server start");
    let client = server.client();
    let pairs = query_stream(n, 100, 9);
    assert_eq!(client.query_batch(&pairs), oracle.estimate_batch(&pairs));
}
