//! Cross-crate contract of the parallel construction engine: for every
//! sketch family, `build(threads = k)` is **byte-identical** to
//! `build(threads = 1)` — all the way down to the serialized `DSK1`
//! snapshot — and the parallel engine's sketches are exactly the sketches
//! the CONGEST simulation produces.
//!
//! * Property test over random graphs: the full `DSK1` snapshot bytes are
//!   equal for `threads ∈ {1, 2, 4, 8}`, for all four families.
//! * Cross-engine equivalence: the parallel engine and the simulator agree
//!   label-for-label (the production path can never drift from the
//!   paper-faithful one).
//! * The loaded-from-disk oracle of a parallel build answers identically
//!   to the in-memory one (the store contract holds for the new engine).

use dsketch::prelude::*;
use dsketch_store::{build_stored, load_oracle_for_graph, save_snapshot, write_snapshot};
use netgraph::generators::{erdos_renyi, GeneratorConfig};
use netgraph::{Graph, NodeId};
use proptest::prelude::*;

fn graph(n: usize, seed: u64) -> Graph {
    erdos_renyi(n, 8.0 / n as f64, GeneratorConfig::uniform(seed, 1, 50))
}

fn parallel_config(seed: u64, threads: usize) -> SchemeConfig {
    SchemeConfig::default()
        .with_seed(seed)
        .with_parallel_build()
        .with_threads(threads)
}

/// Serialize a parallel build of `spec` into `DSK1` snapshot bytes.
fn snapshot_bytes(graph: &Graph, spec: SchemeSpec, seed: u64, threads: usize) -> Vec<u8> {
    let contents =
        build_stored(graph, spec, &parallel_config(seed, threads)).expect("parallel build");
    let mut bytes = Vec::new();
    write_snapshot(&mut bytes, &contents).expect("serialize snapshot");
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole determinism guarantee: for every family, every thread
    /// count yields the same snapshot bytes on random graphs.
    #[test]
    fn snapshots_are_byte_identical_for_every_thread_count(
        (n, seed) in (24usize..64, 0u64..1_000)
    ) {
        let g = graph(n, seed);
        for spec in SchemeSpec::all_families() {
            let reference = snapshot_bytes(&g, spec, seed, 1);
            for threads in [2usize, 4, 8] {
                let bytes = snapshot_bytes(&g, spec, seed, threads);
                prop_assert_eq!(
                    &bytes,
                    &reference,
                    "{} snapshot differs at threads = {} (n = {}, seed = {})",
                    spec,
                    threads,
                    n,
                    seed
                );
            }
        }
    }
}

/// The parallel engine and the CONGEST simulation produce the same labels:
/// identical estimates and identical per-node label sizes for every family.
#[test]
fn parallel_engine_matches_the_congest_simulation() {
    let g = graph(128, 7);
    for spec in SchemeSpec::all_families() {
        let simulated = SketchBuilder::new(spec).seed(7).build(&g).unwrap();
        let parallel = SketchBuilder::new(spec)
            .seed(7)
            .parallel()
            .threads(4)
            .build(&g)
            .unwrap();
        for u in g.nodes() {
            assert_eq!(
                simulated.sketches.words(u),
                parallel.sketches.words(u),
                "{spec}: label size mismatch at {u}"
            );
        }
        for i in 0..2_000u32 {
            let u = NodeId((i.wrapping_mul(2654435761)) % 128);
            let v = NodeId((i.wrapping_mul(40503).wrapping_add(12345)) % 128);
            match (
                simulated.sketches.estimate(u, v),
                parallel.sketches.estimate(u, v),
            ) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "{spec}: mismatch at ({u}, {v})"),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("{spec}: one engine failed at ({u}, {v}): {a:?} vs {b:?}"),
            }
        }
    }
}

/// A parallel build saved to disk reloads into an oracle with identical
/// answers (the persistence contract extends to the new engine), and the
/// snapshot carries the right spec for dispatch.
#[test]
fn parallel_builds_round_trip_through_the_store() {
    let g = graph(96, 3);
    let dir = std::env::temp_dir().join("dsketch_parallel_build_tests");
    std::fs::create_dir_all(&dir).unwrap();
    for (index, spec) in SchemeSpec::all_families().into_iter().enumerate() {
        let path = dir.join(format!("parallel_{index}.dsk"));
        let contents = build_stored(&g, spec, &parallel_config(3, 0)).unwrap();
        save_snapshot(&path, &contents).unwrap();
        let loaded = load_oracle_for_graph(&path, &g).unwrap();
        let built = contents.sketches.as_oracle();
        assert_eq!(loaded.scheme_name(), spec.name());
        for u in 0..96u32 {
            let v = NodeId((u * 31 + 17) % 96);
            let u = NodeId(u);
            assert_eq!(
                built.estimate(u, v).ok(),
                loaded.estimate(u, v).ok(),
                "{spec}"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

/// `threads = 0` (all available parallelism) is part of the determinism
/// contract too: it must match an explicit thread count bit-for-bit.
#[test]
fn auto_thread_count_is_still_deterministic() {
    let g = graph(64, 9);
    for spec in SchemeSpec::all_families() {
        assert_eq!(
            snapshot_bytes(&g, spec, 9, 0),
            snapshot_bytes(&g, spec, 9, 3),
            "{spec}: auto thread count changed the snapshot"
        );
    }
}
