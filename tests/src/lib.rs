//! Integration-test crate: the tests live under `tests/tests/`.
